"""Replicated serving under scripted faults: every failover path, pinned.

The identity anchor extends to failures: every replica of a shard is
built by the same deterministic factory, so the cluster must serve
rankings *and scores* byte-identical to the fault-free inline reference
no matter which replica answers — across crashes, hangs, hedges and
mid-benchmark kills.  The deterministic harness in ``faults.py``
scripts each failure at an exact virtual-clock point, so these tests
pin counter-for-counter what the routing layer did (which replica
failed over, which hedge fired, who won) with zero real processes and
zero sleeps.  A small fork-gated section re-runs the crash story on
real OS processes.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.serving import (
    DiversificationService,
    ReplicatedBackend,
    ShardedDiversificationService,
    WorkerDiedError,
)
from .faults import (
    CRASH_BEFORE_REPLY,
    CRASH_ON_SEND,
    DELAY,
    HANG,
    Fault,
    FaultInjectingBackend,
    FaultSchedule,
)

NUM_SHARDS = 3
REPLICAS = 2

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process replication tests rely on fork inheriting the fixtures",
)


@pytest.fixture(scope="module")
def workload(small_corpus):
    queries = [topic.query for topic in small_corpus.topics]
    return queries * 2 + list(reversed(queries))


@pytest.fixture(scope="module")
def reference(framework_factory, workload):
    """The fault-free inline run every replicated serve must equal."""
    service = DiversificationService(framework_factory())
    return service.diversify_batch(workload)


def assert_results_equal(got, want):
    """Field-for-field equality of two result streams — queries,
    rankings, diversified prefixes, algorithm labels, and the baseline's
    doc ids *and scores* (the "byte-identical" acceptance bar)."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.query == w.query
        assert g.ranking == w.ranking
        assert g.diversified == w.diversified
        assert g.algorithm == w.algorithm
        assert g.baseline.doc_ids == w.baseline.doc_ids
        assert g.baseline.scores == w.baseline.scores


def build_cluster(framework_factory, backend, num_shards=NUM_SHARDS, **kwargs):
    return ShardedDiversificationService.from_factory(
        lambda shard: framework_factory(),
        num_shards=num_shards,
        backend=backend,
        **kwargs,
    )


@pytest.fixture()
def make_cluster(framework_factory):
    clusters = []

    def make(schedule=None, **backend_kwargs):
        backend = FaultInjectingBackend(
            replicas=backend_kwargs.pop("replicas", REPLICAS),
            schedule=schedule,
            **backend_kwargs,
        )
        cluster = build_cluster(framework_factory, backend)
        clusters.append(cluster)
        return cluster, backend

    yield make
    for cluster in clusters:
        cluster.close()


def totals(backend):
    """Summed routing counters across the whole cluster."""
    stats = backend.replication_stats().values()
    return {
        "requests": sum(s.requests_total for s in stats),
        "hedges_fired": sum(s.hedges_fired_total for s in stats),
        "hedges_won": sum(s.hedges_won_total for s in stats),
        "respawns": sum(s.respawns_total for s in stats),
        "failovers": sum(s.failovers_total for s in stats),
    }


class TestFaultFreeReplication:
    @pytest.mark.parametrize("policy", ["round-robin", "least-outstanding"])
    def test_identity_and_no_phantom_failures(
        self, make_cluster, workload, reference, policy
    ):
        cluster, backend = make_cluster(policy=policy)
        assert_results_equal(cluster.diversify_batch(workload), reference)
        assert_results_equal(cluster.diversify_batch(workload), reference)
        counters = totals(backend)
        assert counters["respawns"] == 0
        assert counters["failovers"] == 0
        assert counters["hedges_fired"] == 0
        # Exactly the initial fleet was built — no silent respawns.
        assert len(backend.spawned) == NUM_SHARDS * REPLICAS

    def test_round_robin_alternates_replicas(self, make_cluster, workload):
        cluster, backend = make_cluster()
        for _ in range(4):
            cluster.diversify_batch(workload)
        for stats in backend.replication_stats().values():
            # 4 batches -> 4 calls per shard, alternating slots 0/1.
            assert stats.requests == (2, 2)

    def test_warm_reaches_every_replica(self, make_cluster, workload):
        cluster, backend = make_cluster()
        report = cluster.warm(workload)
        assert report.queries == len(set(workload))
        for shard in range(NUM_SHARDS):
            infos = backend.invoke_replicas(shard, "spec_cache_info")
            assert len(infos) == REPLICAS
            # Identical factories, identical warm bucket -> identical caches.
            assert infos[0].size == infos[1].size

    def test_invalidate_reaches_every_replica(self, make_cluster, workload):
        cluster, backend = make_cluster()
        cluster.warm(workload)
        cluster.diversify_batch(workload)
        cluster.invalidate()
        for shard in range(NUM_SHARDS):
            for info in backend.invoke_replicas(shard, "result_cache_info"):
                assert info.size == 0

    def test_service_errors_propagate_without_failover(self, make_cluster):
        cluster, backend = make_cluster()
        with pytest.raises(AttributeError):
            cluster.backend.invoke(0, "frobnicate")
        counters = totals(backend)
        assert counters["failovers"] == 0
        assert counters["respawns"] == 0


class TestCrashFailover:
    def test_crash_on_send_fails_over_and_respawns(
        self, make_cluster, workload, reference
    ):
        schedule = FaultSchedule()
        for shard in range(NUM_SHARDS):
            schedule.at(shard, 0, 0, Fault(CRASH_ON_SEND))
        cluster, backend = make_cluster(schedule)
        assert_results_equal(cluster.diversify_batch(workload), reference)
        for stats in backend.replication_stats().values():
            assert stats.failovers == (1, 0)
            assert stats.respawns == (1, 0)
            assert stats.requests == (0, 1)  # the dispatch that landed
        # Each dead slot was rebuilt exactly once.
        assert len(backend.spawned) == NUM_SHARDS * REPLICAS + NUM_SHARDS

    def test_crash_before_reply_fails_over(
        self, make_cluster, workload, reference
    ):
        schedule = FaultSchedule()
        for shard in range(NUM_SHARDS):
            schedule.at(shard, 0, 0, Fault(CRASH_BEFORE_REPLY))
        cluster, backend = make_cluster(schedule)
        assert_results_equal(cluster.diversify_batch(workload), reference)
        for stats in backend.replication_stats().values():
            assert stats.failovers == (1, 0)
            assert stats.respawns == (1, 0)

    def test_mid_benchmark_kill_keeps_identity(
        self, make_cluster, workload, reference
    ):
        """The acceptance scenario, deterministically: serve, kill one
        replica per shard, keep serving — results never change."""
        cluster, backend = make_cluster()
        half = len(workload) // 2
        first = cluster.diversify_batch(workload[:half])
        for shard in range(NUM_SHARDS):
            backend.kill_replica(shard)
        second = cluster.diversify_batch(workload[half:])
        assert_results_equal(first + second, reference)
        assert totals(backend)["respawns"] == NUM_SHARDS

    def test_all_replicas_dying_surfaces_typed_error(self, make_cluster, workload):
        schedule = FaultSchedule()
        shard = 0
        for replica in range(REPLICAS):
            schedule.always(shard, replica, Fault(CRASH_ON_SEND))
        cluster, backend = make_cluster(schedule)
        target = next(q for q in workload if cluster.route(q) == shard)
        with pytest.raises(WorkerDiedError, match="no replica could answer"):
            cluster.diversify(target)
        error_shards = None
        try:
            cluster.diversify(target)
        except WorkerDiedError as exc:
            error_shards = exc.shards
        assert error_shards == (shard,)
        # The retry budget is finite: respawns happened but bounded.
        assert totals(backend)["respawns"] <= 2 * (2 * REPLICAS + 4) + REPLICAS


class TestHedgedRequests:
    def _target(self, cluster, workload, shard):
        return next(q for q in workload if cluster.route(q) == shard)

    def test_hung_primary_hedge_fires_and_wins(
        self, make_cluster, workload, reference
    ):
        by_query = {r.query: r for r in reference}
        schedule = FaultSchedule().at(0, 0, 0, Fault(HANG))
        cluster, backend = make_cluster(schedule, hedge_after_ms=50)
        query = self._target(cluster, workload, 0)
        result = cluster.diversify(query)
        assert_results_equal([result], [by_query[query]])
        stats = backend.replication_stats()[0]
        assert stats.hedges_fired == (0, 1)
        assert stats.hedges_won == (0, 1)
        assert stats.respawns == (0, 0)  # hung, not yet declared dead
        # The hedge fired exactly at the deadline on the virtual clock.
        assert backend.clock.now == pytest.approx(0.05)

    def test_hung_replica_is_buried_after_hang_timeout(
        self, make_cluster, workload, reference
    ):
        by_query = {r.query: r for r in reference}
        schedule = FaultSchedule().at(0, 0, 0, Fault(HANG))
        cluster, backend = make_cluster(
            schedule, hedge_after_ms=50, hang_timeout_s=1.0
        )
        query = self._target(cluster, workload, 0)
        cluster.diversify(query)
        backend.clock.advance(2.0)  # past the hang budget
        result = cluster.diversify(query)
        assert_results_equal([result], [by_query[query]])
        stats = backend.replication_stats()[0]
        assert stats.respawns == (1, 0)
        assert (0, 0) in backend.spawned[NUM_SHARDS * REPLICAS:]

    def test_slow_primary_wins_its_own_hedge(
        self, make_cluster, workload, reference
    ):
        """Primary slower than the hedge deadline but faster than the
        (also slow) secondary: the hedge fires and loses; its abandoned
        reply is drained, never served."""
        by_query = {r.query: r for r in reference}
        schedule = (
            FaultSchedule()
            .at(0, 0, 0, Fault(DELAY, delay=0.08))
            .at(0, 1, 0, Fault(DELAY, delay=0.5))
        )
        cluster, backend = make_cluster(schedule, hedge_after_ms=50)
        query = self._target(cluster, workload, 0)
        result = cluster.diversify(query)
        assert_results_equal([result], [by_query[query]])
        stats = backend.replication_stats()[0]
        assert stats.hedges_fired == (0, 1)
        assert stats.hedges_won == (0, 0)
        # Serving continues cleanly: the loser's owed reply is drained,
        # not delivered to a later request.
        again = cluster.diversify(query)
        assert_results_equal([again], [by_query[query]])
        assert totals(backend)["respawns"] == 0

    def test_hedges_never_duplicate_or_reorder_results(
        self, make_cluster, workload, reference
    ):
        """Every request to a slot-0 primary is slow, so hedges fire
        constantly — and the result stream still aligns one-for-one
        with the request stream, duplicates included."""
        schedule = FaultSchedule()
        for shard in range(NUM_SHARDS):
            schedule.always(shard, 0, Fault(DELAY, delay=0.2))
        cluster, backend = make_cluster(schedule, hedge_after_ms=50)
        batch = list(workload) + list(workload[:4])  # extra duplicates
        got = cluster.diversify_batch(batch)
        assert [r.query for r in got] == batch
        by_query = {r.query: r for r in reference}
        assert_results_equal(got, [by_query[q] for q in batch])
        assert totals(backend)["hedges_fired"] >= NUM_SHARDS

    def test_least_outstanding_routes_around_owing_replica(
        self, make_cluster, workload, reference
    ):
        """After a hedge abandons a hung slot-0, least-outstanding sends
        the next request straight to the free replica instead of
        blocking to drain the owed one."""
        by_query = {r.query: r for r in reference}
        schedule = FaultSchedule().at(0, 0, 0, Fault(HANG))
        cluster, backend = make_cluster(
            schedule, hedge_after_ms=50, policy="least-outstanding"
        )
        query = self._target(cluster, workload, 0)
        cluster.diversify(query)
        before = backend.clock.now
        result = cluster.diversify(query)
        assert_results_equal([result], [by_query[query]])
        stats = backend.replication_stats()[0]
        # First call went to r0 (hung; the hedge dispatch counts under
        # hedges_fired, not requests); the follow-up routed straight to
        # the free r1.
        assert stats.requests == (1, 1)
        assert stats.hedges_fired == (0, 1)
        # No blocking drain of the hung replica happened on the way.
        assert backend.clock.now == before


class TestRespawnRehydration:
    def test_respawned_replica_rehydrates_from_warm_store(
        self, framework_factory, workload, reference, tmp_path
    ):
        # Offline phase once, persisted — the respawn's hydration source.
        donor = build_cluster(framework_factory, "inline")
        donor.warm(workload)
        donor.save_warm(tmp_path)
        donor.close()

        backend = FaultInjectingBackend(replicas=REPLICAS)
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(),
            num_shards=NUM_SHARDS,
            backend=backend,
            warm_artifacts_dir=tmp_path,
        )
        try:
            shard = 0
            bucket = [q for q in set(workload) if cluster.route(q) == shard]
            backend.kill_replica(shard, 0)
            assert_results_equal(cluster.diversify_batch(workload), reference)
            assert backend.replication_stats()[shard].respawns == (1, 0)
            # The respawned replica warmed from disk: re-warming its
            # bucket fetches nothing from the engine.
            for report in backend.invoke_replicas(shard, "warm", bucket):
                assert report.fetched == 0
        finally:
            cluster.close()


class TestReplicatedStatsPlumbing:
    def test_shard_stats_carry_replica_breakdowns(
        self, make_cluster, workload
    ):
        cluster, backend = make_cluster()
        cluster.diversify_batch(workload)
        per_shard = cluster.shard_stats()
        assert [s.name for s in per_shard] == [
            f"shard{i}" for i in range(NUM_SHARDS)
        ]
        for shard_entry in per_shard:
            assert shard_entry.shards == ()
            assert len(shard_entry.replicas) == REPLICAS
            assert [r.name for r in shard_entry.replicas] == [
                f"{shard_entry.name}/r{j}" for j in range(REPLICAS)
            ]
        assert sum(s.served for s in per_shard) == len(workload)

    def test_cluster_summary_reports_fault_counters(
        self, make_cluster, workload
    ):
        schedule = FaultSchedule().at(0, 0, 0, Fault(CRASH_ON_SEND))
        cluster, backend = make_cluster(schedule, hedge_after_ms=50)
        cluster.diversify_batch(workload)
        merged = cluster.cluster_stats()
        assert merged.respawns == 1
        assert merged.failovers == 1
        summary = merged.summary()
        assert "respawns=1" in summary
        assert "failovers=1" in summary
        assert "hedges=" in summary
        # The breakdown nests: cluster -> shards -> replicas.
        assert len(merged.shards) == NUM_SHARDS
        assert all(len(s.replicas) == REPLICAS for s in merged.shards)

    def test_cache_info_merges_across_replicas(self, make_cluster, workload):
        cluster, backend = make_cluster()
        cluster.warm(workload)
        cluster.diversify_batch(workload)
        # Every replica of every shard warmed, so the cluster-merged
        # spec cache counts 2x the distinct ambiguous queries' entries
        # of a single-replica cluster — i.e. the per-replica sizes sum.
        expected = 0
        for shard in range(NUM_SHARDS):
            expected += sum(
                i.size for i in backend.invoke_replicas(shard, "spec_cache_info")
            )
        assert cluster.spec_cache_info().size == expected


class TestRandomizedFailoverSweep:
    """Satellite: seeded random schedules of kills/hangs/delays, each
    asserting field-for-field equality with the fault-free reference."""

    @pytest.mark.parametrize("sweep_seed", range(4))
    def test_seeded_fault_schedule_preserves_identity(
        self, make_cluster, workload, reference, sweep_seed
    ):
        rng = random.Random(1000 + sweep_seed)
        schedule = FaultSchedule()
        for shard in range(NUM_SHARDS):
            for _ in range(rng.randint(1, 4)):
                schedule.at(
                    shard,
                    rng.randrange(REPLICAS),
                    rng.randrange(6),
                    Fault(
                        rng.choice([CRASH_ON_SEND, CRASH_BEFORE_REPLY, HANG, DELAY]),
                        delay=rng.choice([0.02, 0.2]),
                    ),
                )
        cluster, backend = make_cluster(
            schedule, hedge_after_ms=50, hang_timeout_s=1.0
        )
        for _ in range(3):  # several batches so later call indexes fire too
            assert_results_equal(cluster.diversify_batch(workload), reference)
        backend.clock.advance(2.0)  # let any hung replicas get buried
        assert_results_equal(cluster.diversify_batch(workload), reference)


@needs_fork
class TestProcessReplication:
    """The same story on real OS processes (small, fork-only)."""

    def test_identity_across_kills_with_real_workers(
        self, framework_factory, workload, reference
    ):
        backend = ReplicatedBackend(replicas=2)
        cluster = build_cluster(framework_factory, backend, num_shards=2)
        try:
            assert_results_equal(cluster.diversify_batch(workload), reference)
            pids_before = [backend.replica_pids(s) for s in range(2)]
            assert all(pid for pids in pids_before for pid in pids)
            for shard in range(2):
                backend.kill_replica(shard)
            assert_results_equal(cluster.diversify_batch(workload), reference)
            stats = backend.replication_stats()
            assert sum(s.respawns_total for s in stats.values()) == 2
            # Killed slots run new processes now.
            pids_after = [backend.replica_pids(s) for s in range(2)]
            assert pids_before != pids_after
            merged = cluster.cluster_stats()
            assert merged.respawns == 2
            assert "respawns=2" in merged.summary()
        finally:
            cluster.close()

    def test_replicas_flag_via_from_factory(
        self, framework_factory, workload, reference
    ):
        cluster = build_cluster(
            framework_factory, None, num_shards=2, replicas=2
        )
        try:
            assert cluster.backend.name == "replicated"
            assert cluster.backend.replicas == 2
            assert_results_equal(cluster.diversify_batch(workload), reference)
        finally:
            cluster.close()

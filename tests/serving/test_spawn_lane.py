"""Opt-in spawn lane: the process backend end to end under
``start_method="spawn"`` — build, warm, diversify, persist.

Everything the fork-based process tests assert, re-asserted in the
start method that inherits *nothing*: every worker is a fresh
interpreter, so the whole travelling surface (factories, collections,
engines, miners, frameworks, reports) must pickle — the ROADMAP's
"spawn-safe process workers end to end" candidate step, pinned.

Spawning an interpreter per worker (plus pickling a full workload into
each) is seconds-per-test, so the lane is **opt-in**: it runs only with
``REPRO_SPAWN_LANE=1`` in the environment.  CI wires it in as a
separate, non-blocking job; run it locally with::

    REPRO_SPAWN_LANE=1 PYTHONPATH=src python -m pytest tests/serving/test_spawn_lane.py -q
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.experiments.offline import PartitionedFrameworkFactory
from repro.experiments.workloads import WorkloadScale, build_trec_workload
from repro.retrieval.engine import SearchEngine
from repro.retrieval.sharding import PartitionedSearchEngine
from repro.serving import (
    DiversificationService,
    ProcessBackend,
    ShardedDiversificationService,
    build_partitioned_engine,
)

pytestmark = [
    pytest.mark.skipif(
        os.environ.get("REPRO_SPAWN_LANE") != "1",
        reason="spawn lane is opt-in: set REPRO_SPAWN_LANE=1",
    ),
    pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="platform does not offer the spawn start method",
    ),
]

#: Small enough that pickling it into every spawned worker stays cheap.
SPAWN_SCALE = WorkloadScale(
    name="spawn-tiny",
    num_topics=4,
    docs_per_aspect=5,
    background_docs=40,
    log_scale=0.05,
    candidates=50,
    k=10,
    spec_results=8,
    cutoffs=(5, 10),
)

NUM_PARTITIONS = 3
NUM_SHARDS = 2


@pytest.fixture(scope="module")
def workload():
    return build_trec_workload(SPAWN_SCALE)


@pytest.fixture(scope="module")
def queries(workload):
    topics = [topic.query for topic in workload.testbed.topics]
    return topics * 2 + list(reversed(topics))


@pytest.fixture(scope="module")
def config():
    return FrameworkConfig(
        k=SPAWN_SCALE.k,
        candidates=SPAWN_SCALE.candidates,
        spec_results=SPAWN_SCALE.spec_results,
    )


def test_partition_parallel_build_under_spawn(workload):
    collection = workload.corpus.collection
    serial = PartitionedSearchEngine(collection, NUM_PARTITIONS)
    engine, report = build_partitioned_engine(
        collection,
        NUM_PARTITIONS,
        backend="process",
        start_method="spawn",
    )
    single = SearchEngine(collection)
    for topic in workload.testbed.topics:
        want = single.search(topic.query, 20)
        assert serial.search(topic.query, 20).scores == want.scores
        got = engine.search(topic.query, 20)
        assert got.doc_ids == want.doc_ids
        assert got.scores == want.scores
    assert report.documents == len(collection)
    assert all(r.seconds > 0 for r in report.shards)


def test_cluster_build_warm_diversify_under_spawn(workload, queries, config):
    collection = workload.corpus.collection
    miner = workload.miner("AOL")

    reference = DiversificationService(
        DiversificationFramework(
            PartitionedSearchEngine(collection, NUM_PARTITIONS),
            miner,
            config=config,
        )
    )
    reference.warm(queries)
    want = [r.ranking for r in reference.diversify_batch(queries)]

    engine, _ = build_partitioned_engine(
        collection, NUM_PARTITIONS, backend="process", start_method="spawn"
    )
    cluster = ShardedDiversificationService.from_factory(
        PartitionedFrameworkFactory(engine, miner, config),
        NUM_SHARDS,
        backend=ProcessBackend(start_method="spawn"),
    )
    try:
        report = cluster.warm(queries)
        assert report.queries == len(set(queries))
        assert report.busy_seconds > 0
        got = [r.ranking for r in cluster.diversify_batch(queries)]
        assert got == want
        stats = cluster.cluster_stats()
        assert stats.served == len(queries)
    finally:
        cluster.close()


def test_warm_persistence_round_trip_under_spawn(
    workload, queries, config, tmp_path
):
    collection = workload.corpus.collection
    miner = workload.miner("AOL")
    engine, _ = build_partitioned_engine(
        collection, NUM_PARTITIONS, backend="process", start_method="spawn"
    )
    factory = PartitionedFrameworkFactory(engine, miner, config)

    donor = ShardedDiversificationService.from_factory(
        factory, NUM_SHARDS, backend=ProcessBackend(start_method="spawn")
    )
    try:
        donor.warm(queries)
        assert donor.save_warm(tmp_path) > 0
    finally:
        donor.close()

    restarted = ShardedDiversificationService.from_factory(
        factory,
        NUM_SHARDS,
        backend=ProcessBackend(start_method="spawn"),
        warm_artifacts_dir=tmp_path,
    )
    try:
        # The offline phase came off disk inside the spawned workers.
        assert restarted.warm(queries).fetched == 0
    finally:
        restarted.close()

"""Deterministic asyncio test harness for the micro-batching front-end.

Asyncio timing tests are flaky by default: real timers make the admission
window close whenever the host scheduler feels like it.  This module
removes every real-time dependency so each interleaving a test constructs
is the interleaving that runs:

* :class:`ManualClock` — drop-in for the service's clock protocol whose
  ``sleep()`` futures resolve only when the test calls ``advance()``.
  Until then the admission window simply cannot close on time.
* :func:`settle` — drain the event loop's ready queue by yielding a
  bounded number of times, so "let everything that can run, run" is an
  explicit, deterministic step instead of a fragile real sleep.
* :func:`run` — ``asyncio.run`` with a hard watchdog: a test that
  deadlocks fails in seconds instead of hanging the suite (independent
  of any pytest timeout plugin).
* :class:`RecordingBackend` / :class:`FailingBackend` — backend spies
  that record exactly which batches were formed, or inject dispatch
  failures.

Tests build scenarios as ``async def`` coroutines and execute them with
``run(scenario())`` — no asyncio pytest plugin required.
"""

from __future__ import annotations

import asyncio
import heapq

#: Hard per-scenario watchdog (seconds).  Deterministic scenarios finish
#: in milliseconds; anything approaching this is a deadlock.
WATCHDOG_S = 20.0

#: How many times :func:`settle` yields to the loop.  Each yield runs
#: every currently-ready callback; a bounded chain of wakeups (put →
#: getter → window → dispatch → future) settles well within this.
SETTLE_ROUNDS = 50


def run(coro, timeout: float = WATCHDOG_S):
    """Run *coro* on a fresh event loop, failing hard on deadlock."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def settle(rounds: int = SETTLE_ROUNDS) -> None:
    """Yield to the event loop until all ready work has run its course."""
    for _ in range(rounds):
        await asyncio.sleep(0)


class ManualClock:
    """A clock the test advances by hand.

    ``sleep()`` parks the caller on a future keyed by its deadline;
    ``advance(dt)`` moves time forward and wakes every sleeper whose
    deadline has passed, then settles the loop so the woken tasks (and
    everything they trigger) run to their next suspension point before
    the test continues.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._seq = 0

    def now(self) -> float:
        return self._now

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._sleepers, (self._now + seconds, self._seq, future))
        self._seq += 1
        await future

    @property
    def pending_sleepers(self) -> int:
        return sum(1 for _, _, f in self._sleepers if not f.done())

    async def advance(self, seconds: float) -> None:
        """Move time forward and let everything due (and its fallout) run."""
        await settle()  # let tasks reach their waits before time moves
        self._now += seconds
        while self._sleepers and self._sleepers[0][0] <= self._now + 1e-9:
            _, _, future = heapq.heappop(self._sleepers)
            if not future.done():  # cancelled sleeps just fall out
                future.set_result(None)
        await settle()


class RecordingBackend:
    """Wrap a real service, recording every batch the front-end forms."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.batches: list[list[str]] = []

    def diversify_batch(self, queries):
        self.batches.append(list(queries))
        return self.inner.diversify_batch(queries)

    def warm(self, queries):
        return self.inner.warm(queries)

    @property
    def stats(self):
        return self.inner.stats

    @property
    def served_queries(self) -> list[str]:
        return [query for batch in self.batches for query in batch]


class FailingBackend:
    """A backend whose dispatch always raises — error-path testing."""

    def __init__(self, exc: Exception | None = None) -> None:
        self.exc = exc or RuntimeError("backend exploded")
        self.calls = 0

    def diversify_batch(self, queries):
        self.calls += 1
        raise self.exc

    def warm(self, queries):  # pragma: no cover - not exercised
        raise self.exc

"""Fused batch execution inside the serving layer.

The serving contract for fusion is *invisibility*: with a kernel-backed
diversifier, ``diversify_batch`` groups ambiguous queries through the
cross-query fused kernels, and every ``DiversifiedResult`` field must
equal what the per-query loop produces — only the latency accounting
and the fusion counters in :class:`ServiceStats` may differ.
"""

from __future__ import annotations

import pytest

from repro.core.fast import (
    FastIASelect,
    FastMMR,
    FastOptSelect,
    FastXQuAD,
)
from repro.core.optselect import OptSelect
from repro.core.profiling import StageTimer
from repro.serving import DiversificationService
from repro.serving.service import (
    MIN_GROUP_SIZE,
    ServiceStats,
    plan_fusion_groups,
)
from repro.serving.sharded import ShardedDiversificationService

FUSED_CLASSES = [FastOptSelect, FastXQuAD, FastIASelect, FastMMR]


def _assert_same_results(fused_results, looped_results):
    for fused, looped in zip(fused_results, looped_results):
        assert fused.query == looped.query
        assert fused.ranking == looped.ranking
        assert fused.diversified == looped.diversified
        assert fused.algorithm == looped.algorithm
        assert fused.baseline.doc_ids == looped.baseline.doc_ids
        assert fused.specializations == looped.specializations


class TestFusedIdentity:
    @pytest.mark.parametrize("diversifier_cls", FUSED_CLASSES)
    def test_fused_batch_matches_looped_batch(
        self, framework_factory, topic_queries, diversifier_cls
    ):
        fused = DiversificationService(
            framework_factory(diversifier=diversifier_cls()), fused=True
        )
        looped = DiversificationService(
            framework_factory(diversifier=diversifier_cls()), fused=False
        )
        queries = topic_queries + list(reversed(topic_queries))
        _assert_same_results(
            fused.diversify_batch(queries), looped.diversify_batch(queries)
        )

    def test_auto_mode_equals_pinned_on(self, framework_factory, topic_queries):
        auto = DiversificationService(
            framework_factory(diversifier=FastOptSelect())
        )
        pinned = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=True
        )
        _assert_same_results(
            auto.diversify_batch(topic_queries),
            pinned.diversify_batch(topic_queries),
        )
        assert auto.stats.fused_queries == pinned.stats.fused_queries

    def test_cache_hits_skip_the_fused_path(
        self, framework_factory, topic_queries
    ):
        service = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=True
        )
        first = service.diversify_batch(topic_queries)
        fused_after_first = service.stats.fused_queries
        second = service.diversify_batch(topic_queries)
        assert service.stats.fused_queries == fused_after_first
        for a, b in zip(first, second):
            assert a is b


class TestFusionAccounting:
    def test_every_diversified_query_is_fused_or_fallback(
        self, framework_factory, topic_queries
    ):
        service = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=True
        )
        service.diversify_batch(topic_queries)
        stats = service.stats
        assert stats.diversified > 0
        assert stats.fused_queries + stats.fallback_queries == stats.diversified
        if stats.fusion_groups:
            assert stats.fused_queries >= MIN_GROUP_SIZE * stats.fusion_groups
            assert 0.0 < stats.pad_fill_ratio <= 1.0
            assert stats.fused_filled_cells <= stats.fused_padded_cells

    def test_fused_off_leaves_counters_zero(
        self, framework_factory, topic_queries
    ):
        service = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=False
        )
        service.diversify_batch(topic_queries)
        assert service.stats.fused_queries == 0
        assert service.stats.fallback_queries == 0
        assert service.stats.fusion_groups == 0
        assert service.stats.pad_fill_ratio == 1.0

    def test_pure_python_diversifier_never_fuses(
        self, framework_factory, topic_queries
    ):
        # fused=True is "fuse when capable"; the reference OptSelect has
        # no fused executor, so the service quietly serves per-query.
        service = DiversificationService(
            framework_factory(diversifier=OptSelect()), fused=True
        )
        service.diversify_batch(topic_queries)
        assert service.stats.fused_queries == 0
        assert service.stats.fusion_groups == 0

    def test_summary_reports_fusion_when_it_ran(
        self, framework_factory, topic_queries
    ):
        service = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=True
        )
        service.diversify_batch(topic_queries)
        if service.stats.fused_queries:
            summary = service.stats.summary()
            assert "fused=" in summary and "fill=" in summary

    def test_summary_silent_without_fusion(self, framework_factory, topic_queries):
        service = DiversificationService(
            framework_factory(diversifier=OptSelect())
        )
        service.diversify_batch(topic_queries)
        assert "fused=" not in service.stats.summary()

    def test_merge_sums_fusion_counters(self):
        a = ServiceStats(
            fused_queries=4,
            fallback_queries=1,
            fusion_groups=2,
            fused_filled_cells=100,
            fused_padded_cells=160,
        )
        b = ServiceStats(
            fused_queries=6,
            fallback_queries=0,
            fusion_groups=1,
            fused_filled_cells=300,
            fused_padded_cells=340,
        )
        merged = ServiceStats.merge([a, b])
        assert merged.fused_queries == 10
        assert merged.fallback_queries == 1
        assert merged.fusion_groups == 3
        assert merged.pad_fill_ratio == pytest.approx(400 / 500)

    def test_profiler_captures_kernel_stages(
        self, framework_factory, topic_queries
    ):
        service = DiversificationService(
            framework_factory(diversifier=FastOptSelect()), fused=True
        )
        service.profiler = StageTimer()
        service.diversify_batch(topic_queries)
        if service.stats.fusion_groups:
            assert set(service.profiler.snapshot()) == {
                "densify",
                "score",
                "select",
            }
        else:  # nothing grouped: the profiler must stay silent
            assert service.profiler.snapshot() == {}


class TestPlanFusionGroups:
    def test_identical_shapes_form_one_group(self):
        groups = plan_fusion_groups([(20, 5)] * 6)
        assert groups == [[0, 1, 2, 3, 4, 5]]

    def test_covers_every_index_exactly_once(self):
        shapes = [(10, 3), (80, 8), (10, 3), (5, 1), (40, 8), (80, 8)]
        groups = plan_fusion_groups(shapes)
        assert sorted(i for group in groups for i in group) == list(
            range(len(shapes))
        )

    def test_ragged_outliers_are_isolated(self):
        # A wide and a tall tensor pad each other catastrophically: the
        # combined envelope is 100×100 for 400 real cells (fill 0.02).
        groups = plan_fusion_groups([(100, 2), (2, 100)])
        assert groups == [[0], [1]]

    def test_fill_floor_splits_diluted_groups(self):
        shapes = [(100, 100)] + [(10, 10)] * 4
        groups = plan_fusion_groups(shapes, min_fill_ratio=0.9)
        assert [0] in groups
        small = next(g for g in groups if 0 not in g)
        assert sorted(sum((g for g in groups if 0 not in g), [])) == [1, 2, 3, 4]
        assert small

    def test_greedy_respects_the_configured_floor(self):
        shapes = [(20, 10), (18, 10), (10, 10)]
        permissive = plan_fusion_groups(shapes, min_fill_ratio=0.1)
        assert permissive == [[0, 1, 2]]
        # pairing 0 and 1 fills exactly 0.95 of the 2×20×10 envelope, so
        # a floor just above that forces every shape into its own group
        strict = plan_fusion_groups(shapes, min_fill_ratio=0.96)
        assert len(strict) == 3

    def test_empty_input(self):
        assert plan_fusion_groups([]) == []


class TestShardedFusion:
    def test_cluster_identity_and_counter_rollup(
        self, framework_factory, topic_queries
    ):
        def shard_framework(_shard_id):
            return framework_factory(diversifier=FastOptSelect())

        fused = ShardedDiversificationService.from_factory(
            shard_framework, num_shards=2, backend="inline", fused=True
        )
        looped = ShardedDiversificationService.from_factory(
            shard_framework, num_shards=2, backend="inline", fused=False
        )
        queries = topic_queries * 2
        _assert_same_results(
            fused.diversify_batch(queries), looped.diversify_batch(queries)
        )
        cluster = fused.cluster_stats()
        assert cluster.fused_queries == sum(
            s.fused_queries for s in cluster.shards
        )
        assert (
            cluster.fused_queries + cluster.fallback_queries
            == cluster.diversified
        )
        assert looped.cluster_stats().fused_queries == 0

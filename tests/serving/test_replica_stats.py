"""ServiceStats merge semantics for the replication counters.

Satellite of the replication PR, mirroring the PR-5 idle-shard pins:
the new counters (hedges fired/won, respawns, failovers) and the
per-replica breakdown must survive every merge shape — empty inputs,
generators, zero-traffic replicas — and nest correctly when a shard
entry with a replica breakdown later merges into a cluster entry.
"""

from __future__ import annotations

from repro.serving import ServiceStats


def make_stats(name, served=0, **counters):
    stats = ServiceStats(served=served, name=name, **counters)
    return stats


class TestMergeReplicationCounters:
    def test_merge_sums_the_new_counters(self):
        merged = ServiceStats.merge(
            [
                make_stats("a", served=3, hedges_fired=2, hedges_won=1,
                           respawns=1, failovers=2),
                make_stats("b", served=5, hedges_fired=1, hedges_won=0,
                           respawns=0, failovers=1),
            ]
        )
        assert merged.hedges_fired == 3
        assert merged.hedges_won == 1
        assert merged.respawns == 1
        assert merged.failovers == 3
        assert merged.served == 8

    def test_merge_accepts_a_generator(self):
        merged = ServiceStats.merge(
            make_stats(f"s{i}", respawns=i, failovers=1) for i in range(4)
        )
        assert merged.respawns == 6
        assert merged.failovers == 4
        assert len(merged.shards) == 4

    def test_empty_merge_is_a_wellformed_zeroed_summary(self):
        merged = ServiceStats.merge([])
        assert merged.hedges_fired == 0
        assert merged.hedges_won == 0
        assert merged.respawns == 0
        assert merged.failovers == 0
        assert merged.replicas == ()
        assert merged.shards == ()
        assert "respawns" not in merged.summary()  # zeros stay quiet

    def test_empty_merge_replicas_is_wellformed(self):
        merged = ServiceStats.merge_replicas([], name="shard0")
        assert merged.name == "shard0"
        assert merged.replicas == ()
        assert merged.shards == ()
        assert merged.served == 0


class TestMergeReplicas:
    def test_breakdown_lands_in_replicas_not_shards(self):
        merged = ServiceStats.merge_replicas(
            [
                make_stats("shard0/r0", served=7, respawns=1),
                make_stats("shard0/r1", served=3, hedges_won=2),
            ],
            name="shard0",
        )
        assert merged.name == "shard0"
        assert merged.shards == ()
        assert [r.name for r in merged.replicas] == ["shard0/r0", "shard0/r1"]
        assert merged.served == 10
        assert merged.respawns == 1
        assert merged.hedges_won == 2

    def test_accepts_a_generator(self):
        merged = ServiceStats.merge_replicas(
            (make_stats(f"shard1/r{i}", served=i) for i in range(3)),
            name="shard1",
        )
        assert len(merged.replicas) == 3
        assert merged.served == 3

    def test_zero_traffic_replica_contributes_zeroed_entry(self):
        busy = make_stats("shard2/r0", served=9)
        busy.latencies_ms.extend([1.0, 2.0])
        idle = make_stats("shard2/r1")
        merged = ServiceStats.merge_replicas([busy, idle], name="shard2")
        assert len(merged.replicas) == 2
        zeroed = merged.replicas[1]
        assert zeroed.name == "shard2/r1"
        assert zeroed.served == 0
        assert zeroed.ranked == 0
        assert list(zeroed.latencies_ms) == []
        assert zeroed.summary().startswith("[shard2/r1]")

    def test_breakdown_is_a_snapshot(self):
        leaf = make_stats("shard0/r0", served=1)
        merged = ServiceStats.merge_replicas([leaf], name="shard0")
        leaf.served = 100
        leaf.respawns = 50
        assert merged.replicas[0].served == 1
        assert merged.replicas[0].respawns == 0

    def test_nests_inside_a_cluster_merge(self):
        shard0 = ServiceStats.merge_replicas(
            [make_stats("shard0/r0", served=4, respawns=1),
             make_stats("shard0/r1", served=2)],
            name="shard0",
        )
        shard1 = ServiceStats.merge_replicas(
            [make_stats("shard1/r0"), make_stats("shard1/r1", failovers=3)],
            name="shard1",
        )
        cluster = ServiceStats.merge([shard0, shard1])
        assert cluster.served == 6
        assert cluster.respawns == 1
        assert cluster.failovers == 3
        assert [s.name for s in cluster.shards] == ["shard0", "shard1"]
        # The nested replica breakdowns survive the deep copy.
        assert [r.name for r in cluster.shards[0].replicas] == [
            "shard0/r0", "shard0/r1",
        ]
        assert len(cluster.shards[1].replicas) == 2
        assert cluster.replicas == ()  # cluster level has shards, not replicas


class TestSummaryReporting:
    def test_summary_reports_the_fault_counters(self):
        stats = make_stats("cluster", served=10, hedges_fired=4,
                           hedges_won=2, respawns=3, failovers=1)
        summary = stats.summary()
        assert "hedges=4/2" in summary
        assert "respawns=3" in summary
        assert "failovers=1" in summary

    def test_summary_reports_replica_count(self):
        merged = ServiceStats.merge_replicas(
            [make_stats("shard0/r0"), make_stats("shard0/r1")], name="shard0"
        )
        assert "replicas=2" in merged.summary()

    def test_fault_free_summary_stays_unchanged(self):
        stats = make_stats("svc", served=5)
        summary = stats.summary()
        assert "hedges" not in summary
        assert "respawns" not in summary
        assert "replicas" not in summary

"""Store-backed serving: the serving stack over an attached index store.

The identity anchor of the storage PR: a cluster whose shards hold a
:class:`~repro.retrieval.store.StoreBackedSearchEngine` (postings paged
from SQLite through the LRU page cache) must serve results
field-identical — rankings *and* baseline scores — to the same cluster
over the fully in-memory engine, under every execution backend; warm
artifacts hydrate from the store's ``warm_artifacts`` table instead of
JSONL, including on replica respawn; and the page-cache counters
surface through ``ServiceStats`` and the HTTP stats payload.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.framework import DiversificationFramework
from repro.retrieval.sharding import PartitionedSearchEngine
from repro.retrieval.store import StoreBackedSearchEngine, write_store
from repro.serving import (
    BACKEND_NAMES,
    DiversificationService,
    ShardedDiversificationService,
    persist_store,
    stats_payload,
)
from .faults import FaultInjectingBackend

from tests.conftest import STANDARD_CONFIG

NUM_SHARDS = 2

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend tests rely on fork inheriting the fixtures",
)


@pytest.fixture(scope="module")
def built_engine(small_corpus):
    return PartitionedSearchEngine(small_corpus.collection, NUM_SHARDS)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, built_engine):
    path = tmp_path_factory.mktemp("serving-store") / "index.sqlite3"
    write_store(path, built_engine)
    return path


@pytest.fixture(scope="module")
def workload(small_corpus):
    queries = [topic.query for topic in small_corpus.topics]
    return queries + list(reversed(queries))


@pytest.fixture(scope="module")
def reference(built_engine, small_miner, workload):
    """The in-memory-engine run every store-backed serve must equal."""
    service = DiversificationService(
        DiversificationFramework(built_engine, small_miner, config=STANDARD_CONFIG)
    )
    return service.diversify_batch(workload)


def make_store_framework_factory(store_path, miner):
    def factory(shard: int) -> DiversificationFramework:
        return DiversificationFramework(
            StoreBackedSearchEngine(store_path),
            miner,
            config=STANDARD_CONFIG,
        )

    return factory


def assert_results_equal(got, want):
    __tracebackhide__ = True
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.query == w.query
        assert g.ranking == w.ranking
        assert g.diversified == w.diversified
        assert g.algorithm == w.algorithm
        assert g.baseline.doc_ids == w.baseline.doc_ids
        assert g.baseline.scores == w.baseline.scores


class TestStoreBackedClusterIdentity:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_identical_under_every_backend(
        self, store_path, small_miner, workload, reference, backend
    ):
        if backend == "process" and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            pytest.skip("no fork on this platform")
        cluster = ShardedDiversificationService.from_factory(
            make_store_framework_factory(store_path, small_miner),
            num_shards=NUM_SHARDS,
            backend=backend,
        )
        try:
            assert_results_equal(cluster.diversify_batch(workload), reference)
        finally:
            cluster.close()


class TestWarmStoreHydration:
    @pytest.fixture(scope="class")
    def warmed_store(
        self, tmp_path_factory, built_engine, small_miner, workload
    ):
        """A store whose warm_artifacts rows were written by a warmed
        donor cluster — the offline pipeline's full output."""
        path = tmp_path_factory.mktemp("warm-store") / "index.sqlite3"
        donor = ShardedDiversificationService.from_factory(
            lambda shard: DiversificationFramework(
                built_engine, small_miner, config=STANDARD_CONFIG
            ),
            num_shards=NUM_SHARDS,
            backend="inline",
        )
        try:
            donor.warm(workload)
            persist_store(path, built_engine, donor)
        finally:
            donor.close()
        return path

    def test_hydrated_cluster_refetches_nothing(
        self, warmed_store, small_miner, workload, reference
    ):
        cluster = ShardedDiversificationService.from_factory(
            make_store_framework_factory(warmed_store, small_miner),
            num_shards=NUM_SHARDS,
            backend="inline",
            warm_store=warmed_store,
        )
        try:
            # Every artifact came from the store's rows: re-warming the
            # expected queries fetches nothing from the engine.
            assert cluster.warm(workload).fetched == 0
            assert_results_equal(cluster.diversify_batch(workload), reference)
        finally:
            cluster.close()

    def test_respawned_replica_rehydrates_from_store(
        self, warmed_store, small_miner, workload, reference
    ):
        backend = FaultInjectingBackend(replicas=2)
        cluster = ShardedDiversificationService.from_factory(
            make_store_framework_factory(warmed_store, small_miner),
            num_shards=NUM_SHARDS,
            backend=backend,
            warm_store=warmed_store,
        )
        try:
            shard = 0
            bucket = [q for q in set(workload) if cluster.route(q) == shard]
            backend.kill_replica(shard, 0)
            assert_results_equal(cluster.diversify_batch(workload), reference)
            assert backend.replication_stats()[shard].respawns == (1, 0)
            # The respawned replica's factory re-attached the store and
            # hydrated its warm rows: nothing is refetched.
            for report in backend.invoke_replicas(shard, "warm", bucket):
                assert report.fetched == 0
        finally:
            cluster.close()


class TestPageCacheStatsSurface:
    def test_service_stats_carry_page_counters(
        self, store_path, small_miner, workload
    ):
        service = DiversificationService(
            DiversificationFramework(
                StoreBackedSearchEngine(store_path),
                small_miner,
                config=STANDARD_CONFIG,
            )
        )
        service.diversify_batch(workload)
        stats = service.get_stats()
        assert stats.page_misses > 0
        assert stats.page_resident_bytes > 0
        assert "pages=" in stats.summary()

    def test_http_stats_payload_includes_page_cache(
        self, store_path, small_miner, workload
    ):
        service = DiversificationService(
            DiversificationFramework(
                StoreBackedSearchEngine(store_path),
                small_miner,
                config=STANDARD_CONFIG,
            )
        )
        service.diversify_batch(workload)
        payload = stats_payload(service.get_stats())
        cache = payload["page_cache"]
        assert cache["misses"] > 0
        assert cache["resident_bytes"] > 0
        assert set(cache) == {"hits", "misses", "evictions", "resident_bytes"}

    def test_in_memory_service_reports_zero_pages(
        self, framework_factory, workload
    ):
        service = DiversificationService(framework_factory())
        service.diversify_batch(workload)
        stats = service.get_stats()
        assert stats.page_hits == stats.page_misses == 0
        assert "pages=" not in stats.summary()

"""Tests for the partition-parallel offline pipeline.

The load-bearing property mirrors the serving layer's: the execution
backends may change *where* partitions build, never *what* gets built —
the assembled engine's rankings and scores equal the serially
constructed `PartitionedSearchEngine`'s (itself identical to a single
undivided engine) under every backend, and the build accounting
(`BuildReport`) reports both clocks plus per-partition memory estimates,
degenerate empty partitions included.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.framework import DiversificationFramework
from repro.retrieval.engine import SearchEngine
from repro.retrieval.sharding import PartitionedSearchEngine
from repro.serving import (
    BACKEND_NAMES,
    DiversificationService,
    InlineBackend,
    ShardedDiversificationService,
    build_partitioned_engine,
)
from repro.serving.offline import PartitionBuildFactory

NUM_PARTITIONS = 3

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend build relies on fork inheriting the fixtures",
)


@pytest.fixture(scope="module")
def collection(small_corpus):
    return small_corpus.collection

@pytest.fixture(scope="module")
def serial_engine(collection):
    return PartitionedSearchEngine(collection, NUM_PARTITIONS)


class TestBuildIdentity:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_parallel_build_identical_to_serial(
        self, small_corpus, collection, serial_engine, backend
    ):
        if backend == "process" and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            pytest.skip("no fork on this platform")
        engine, report = build_partitioned_engine(
            collection, NUM_PARTITIONS, backend=backend
        )
        single = SearchEngine(collection)
        for topic in small_corpus.topics:
            want = single.search(topic.query, 30)
            serial = serial_engine.search(topic.query, 30)
            got = engine.search(topic.query, 30)
            assert want.doc_ids == serial.doc_ids == got.doc_ids
            assert want.scores == serial.scores == got.scores
        assert report.documents == len(collection)

    def test_snippets_work_on_assembled_engine(
        self, small_corpus, collection
    ):
        engine, _ = build_partitioned_engine(
            collection, NUM_PARTITIONS, backend="inline"
        )
        query = small_corpus.topics[0].query
        results = engine.search(query, 5)
        vectors = engine.snippet_vectors(query, results)
        assert set(vectors) == set(results.doc_ids)


class TestBuildReportAccounting:
    @pytest.fixture(scope="class")
    def built(self, collection):
        return build_partitioned_engine(
            collection, NUM_PARTITIONS, backend="inline"
        )

    def test_per_partition_reports(self, built, collection):
        _, report = built
        assert [r.name for r in report.shards] == [
            f"partition{i}" for i in range(NUM_PARTITIONS)
        ]
        assert sum(r.documents for r in report.shards) == len(collection)
        for partition in report.shards:
            assert partition.seconds > 0
            assert partition.postings_bytes > 0
            assert partition.vocabulary_bytes > 0
            assert partition.total_bytes > 0

    def test_wall_and_busy_clocks(self, built):
        _, report = built
        assert report.seconds > 0
        assert report.busy_seconds == pytest.approx(
            sum(r.seconds for r in report.shards)
        )
        # The inline wall-clock wraps partitioning + scatter + assembly,
        # so it is at least the summed build time.
        assert report.seconds >= report.busy_seconds

    def test_counts_match_assembled_engine(self, built):
        engine, report = built
        assert report.tokens == sum(
            p.total_tokens for p in engine.partitions
        )
        assert report.postings == sum(
            p.num_postings for p in engine.partitions
        )
        assert report.total_bytes == engine.memory_estimate()["total_bytes"]

    def test_degenerate_more_partitions_than_documents(self, tiny_collection):
        num = len(tiny_collection) + 3
        engine, report = build_partitioned_engine(
            tiny_collection, num, backend="inline"
        )
        assert len(report.shards) == num
        empties = [r for r in report.shards if r.documents == 0]
        assert empties
        for empty in empties:
            assert empty.postings == 0
            assert empty.postings_bytes == 0
            assert empty.summary().startswith(f"[{empty.name}]")
        single = SearchEngine(tiny_collection)
        got = engine.search("apple fruit", 10)
        want = single.search("apple fruit", 10)
        assert want.doc_ids == got.doc_ids
        assert want.scores == got.scores

    def test_invalid_partition_count(self, collection):
        with pytest.raises(ValueError):
            build_partitioned_engine(collection, 0)


class TestBackendConsumption:
    def test_backend_is_closed_after_build(self, collection):
        backend = InlineBackend()
        build_partitioned_engine(collection, 2, backend=backend)
        # In-process backends stay usable inline after close(), but the
        # builder services were adopted — a second build must refuse.
        with pytest.raises(Exception):
            build_partitioned_engine(collection, 2, backend=backend)

    @needs_fork
    def test_process_build_ships_indexes_back(self, collection):
        engine, report = build_partitioned_engine(
            collection, 2, backend="process"
        )
        assert sum(p.num_documents for p in engine.partitions) == len(
            collection
        )
        # Busy time was measured inside the workers and travelled back.
        assert all(r.seconds > 0 for r in report.shards)


class TestFactoryPickles:
    def test_partition_build_factory_round_trips(self, collection):
        import pickle

        from repro.retrieval.sharding import partition_collection

        parts = tuple(partition_collection(collection, 2))
        engine = SearchEngine(collection)
        factory = PartitionBuildFactory(parts, engine.analyzer)
        clone = pickle.loads(pickle.dumps(factory))
        index, report = clone(0).build()
        assert index.num_documents == len(parts[0])
        assert report.name == "partition0"


class TestOfflineEndToEnd:
    """Parallel build feeds the sharded cluster: served rankings equal
    the unsharded service over the serially built engine."""

    def test_cluster_over_parallel_built_engine(
        self, small_corpus, collection, serial_engine, small_miner,
        standard_config,
    ):
        queries = [t.query for t in small_corpus.topics] * 2
        reference = DiversificationService(
            DiversificationFramework(
                serial_engine, small_miner, config=standard_config
            )
        )
        reference.warm(queries)
        want = [r.ranking for r in reference.diversify_batch(queries)]

        engine, _ = build_partitioned_engine(
            collection, NUM_PARTITIONS, backend="thread"
        )
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: DiversificationFramework(
                engine, small_miner, config=standard_config
            ),
            num_shards=2,
            backend="inline",
        )
        try:
            warm = cluster.warm(queries)
            assert warm.busy_seconds == pytest.approx(
                sum(r.seconds for r in warm.shards)
            )
            got = [r.ranking for r in cluster.diversify_batch(queries)]
            assert got == want
            memory = cluster.warm_memory_estimate()
            assert memory["specializations"] > 0
            assert memory["vectors"] > 0
            assert memory["total_bytes"] > 0
        finally:
            cluster.close()

    def test_warm_memory_estimate_sums_shards(
        self, framework_factory
    ):
        service = DiversificationService(framework_factory())
        before = service.warm_memory_estimate()
        assert before["specializations"] == 0
        assert before["total_bytes"] == 0

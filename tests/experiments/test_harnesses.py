"""Tests for the per-table/figure experiment harnesses (tiny scales)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_constraint import (
    PureTopK,
    run_constraint_ablation,
    summarize as summarize_constraint,
)
from repro.experiments.ablation_lambda import (
    run_lambda_ablation,
    summarize as summarize_lambda,
)
from repro.experiments.feasibility import run_feasibility
from repro.experiments.figure1 import UtilityPoint, run_figure1
from repro.experiments.recall import measure_recall, run_recall
from repro.experiments.table1 import run_table1, summarize as summarize_t1
from repro.experiments.table2 import (
    run_table2,
    speedup_at_largest,
    summarize as summarize_t2,
)
from repro.experiments.table3 import run_table3, summarize as summarize_t3
from repro.experiments.workloads import WorkloadScale, build_trec_workload

TINY = WorkloadScale(
    name="tiny",
    num_topics=4,
    docs_per_aspect=5,
    background_docs=40,
    log_scale=0.05,
    candidates=50,
    k=10,
    spec_results=8,
    cutoffs=(5, 10),
)


@pytest.fixture(scope="module")
def workload():
    return build_trec_workload(TINY, logs=("AOL", "MSN"))


class TestTable1:
    def test_optselect_ops_flat_in_k(self):
        cells = run_table1(ns=(400,), ks=(10, 100), num_specs=4)
        opt = {c.k: c.operations for c in cells if c.algorithm == "OptSelect"}
        assert opt[10] == opt[100]

    def test_greedy_ops_linear_in_k(self):
        cells = run_table1(ns=(400,), ks=(10, 100), num_specs=4)
        for name in ("xQuAD", "IASelect"):
            ops = {c.k: c.operations for c in cells if c.algorithm == name}
            assert ops[100] > 5 * ops[10]

    def test_all_ops_linear_in_n(self):
        cells = run_table1(ns=(300, 600), ks=(20,), num_specs=4)
        for name in ("OptSelect", "xQuAD", "IASelect"):
            ops = {c.n: c.operations for c in cells if c.algorithm == name}
            ratio = ops[600] / ops[300]
            assert 1.6 < ratio < 2.6

    def test_summary_renders(self):
        cells = run_table1(ns=(200,), ks=(10,), num_specs=3)
        text = summarize_t1(cells)
        assert "OptSelect" in text and "O(n log k)" in text


class TestTable2:
    def test_grid_and_summary(self):
        cells = run_table2(grid=((300,), (5, 20)), repeats=1)
        assert len(cells) == 6  # 3 algorithms × 2 k values
        assert all(c.milliseconds >= 0.0 for c in cells)
        text = summarize_t2(cells)
        assert "OptSelect" in text and "k=20" in text

    def test_optselect_fastest_at_largest_cell(self):
        cells = run_table2(grid=((2000,), (10, 100)), repeats=1)
        factors = speedup_at_largest(cells)
        assert factors["xQuAD"] > 1.0
        assert factors["IASelect"] > 1.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, workload):
        return run_table3(
            workload, thresholds=(0.0, 0.97), algorithms=("OptSelect", "xQuAD")
        )

    def test_reports_for_each_algorithm_and_threshold(self, result):
        assert set(result.reports) == {"OptSelect", "xQuAD"}
        assert set(result.reports["OptSelect"]) == {0.0, 0.97}

    def test_high_threshold_collapses_to_baseline(self, result):
        # At tiny scale same-aspect snippets are near-clones, so utilities
        # of ~0.8 survive c = 0.75; the collapse-to-baseline property is
        # probed just below the self-similarity ceiling instead.  (At the
        # paper scales the collapse shows at 0.75, as in Table 3.)
        for algorithm in result.reports:
            report = result.reports[algorithm][0.97]
            for cutoff in (5, 10):
                assert report.mean("alpha-ndcg", cutoff) == pytest.approx(
                    result.baseline.mean("alpha-ndcg", cutoff), abs=0.05
                )

    def test_diversification_helps_at_zero_threshold(self, result):
        best = max(
            result.reports["OptSelect"][0.0].mean("alpha-ndcg", 10),
            result.reports["xQuAD"][0.0].mean("alpha-ndcg", 10),
        )
        assert best >= result.baseline.mean("alpha-ndcg", 10) - 1e-9

    def test_detection_rate_reported(self, result):
        assert 0.0 < result.detection_rate <= 1.0

    def test_summary_renders(self, result):
        text = summarize_t3(result)
        assert "DPH baseline" in text and "a-nDCG@5" in text

    def test_best_threshold_lookup(self, result):
        assert result.best_threshold("OptSelect", cutoff=10) in (0.0, 0.97)


class TestFigure1:
    def test_points_and_series(self, workload):
        result = run_figure1(
            workload,
            logs=("AOL",),
            external_candidates=60,
            k=8,
            spec_results=8,
            max_queries_per_log=10,
        )
        points = result.points["AOL"]
        assert points, "no ambiguous test queries found"
        for point in points:
            assert point.num_specializations >= 2
            assert point.ratio > 0
        series = result.series()
        assert "AOL" in series and series["AOL"]

    def test_ratio_cap(self):
        point = UtilityPoint("q", 3, original_utility=0.0, diversified_utility=5.0)
        assert point.ratio == UtilityPoint.MAX_RATIO
        parity = UtilityPoint("q", 3, 0.0, 0.0)
        assert parity.ratio == 1.0

    def test_diversified_usually_not_worse(self, workload):
        result = run_figure1(
            workload,
            logs=("AOL",),
            external_candidates=60,
            k=8,
            spec_results=8,
            max_queries_per_log=15,
        )
        points = result.points["AOL"]
        at_least_parity = sum(1 for p in points if p.ratio >= 0.99)
        assert at_least_parity >= len(points) * 0.6


class TestRecall:
    def test_recall_over_both_logs(self, workload):
        results = run_recall(workload, logs=("AOL", "MSN"))
        assert [r.log_name for r in results] == ["AOL", "MSN"]
        for r in results:
            assert r.events > 0
            assert 0.0 <= r.recall <= 1.0

    def test_measure_recall_counts_events(self, workload):
        result = measure_recall(workload.logs["AOL"])
        assert result.detected <= result.events


class TestFeasibility:
    def test_footprint_report(self, workload):
        result = run_feasibility(workload, min_frequency=2)
        assert result.num_ambiguous_queries > 0
        assert result.measured_surrogate_bytes > 0
        assert result.avg_surrogate_bytes > 0
        # The analytic bound uses the *max* specialization count, so it
        # dominates the measured footprint.
        assert result.analytic_bound_bytes >= result.measured_surrogate_bytes


class TestAblations:
    def test_lambda_ablation(self, workload):
        result = run_lambda_ablation(
            workload, lambdas=(0.0, 0.5), algorithms=("OptSelect",)
        )
        assert set(result.reports["OptSelect"]) == {0.0, 0.5}
        assert "lambda" in summarize_lambda(result)
        assert result.best_lambda("OptSelect") in (0.0, 0.5)

    def test_constraint_ablation(self, workload):
        result = run_constraint_ablation(workload)
        assert set(result.reports) == {
            "constrained",
            "strict-pseudocode",
            "pure-topk",
        }
        assert "constrained" in summarize_constraint(result)
        for variant, recall in result.avg_subtopic_recall.items():
            assert 0.0 <= recall <= 1.0, variant

    def test_pure_topk_sorts_by_overall_utility(self, workload):
        from repro.experiments.workloads import synthetic_task

        task = synthetic_task(60, num_specs=3, seed=5)
        selected = PureTopK().diversify(task, 10)
        utilities = [task.overall_utility(d) for d in selected]
        assert utilities == sorted(utilities, reverse=True)


class TestThroughputBackendsAndRecords:
    def test_backend_throughput_inline_vs_thread(self, workload, tmp_path):
        from repro.experiments.throughput import (
            run_backend_throughput,
            save_stats_record,
        )

        result = run_backend_throughput(
            workload, num_queries=20, shards=2, backend="inline", repeats=1
        )
        assert result.identity_checked
        assert result.baseline == "thread"
        assert result.queries == 20
        assert result.backend_qps > 0
        assert 0 < result.speedup

        path = save_stats_record(
            tmp_path / "BENCH_test.json",
            {
                "mode": "backend",
                "backend": result.backend,
                "shards": result.shards,
                "qps": result.backend_qps,
            },
        )
        import json

        record = json.loads(path.read_text())
        assert record["schema"].startswith("repro.experiments.throughput/")
        assert record["backend"] == "inline"
        assert record["shards"] == 2
        assert record["cores"] >= 1
        assert record["qps"] > 0

    def test_backend_throughput_validates_arguments(self, workload):
        from repro.experiments.throughput import run_backend_throughput

        with pytest.raises(ValueError):
            run_backend_throughput(workload, shards=0)
        with pytest.raises(ValueError):
            run_backend_throughput(workload, backend="gpu")
        with pytest.raises(ValueError):
            run_backend_throughput(workload, baseline="gpu")

    #: Keys every --save-stats record must carry regardless of mode, so
    #: BENCH trajectory tooling can compare records across modes.
    CORE_RECORD_KEYS = frozenset(
        {
            "mode", "backend", "policy", "shards", "replicas", "zipf_s",
            "queries", "distinct", "qps", "seconds", "latency",
            "identity_checked", "hardware_limited", "scale",
            "store", "memory_budget",
        }
    )

    def test_build_stats_record_core_schema_is_mode_invariant(self):
        from repro.experiments.throughput import build_stats_record

        latency = {"mean_ms": 1.0, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0}
        minimal = build_stats_record(
            "batch",
            backend="inline",
            shards=0,
            queries=10,
            distinct=5,
            qps=100.0,
            seconds=0.1,
            latency=latency,
            scale="tiny",
        )
        assert self.CORE_RECORD_KEYS <= set(minimal)
        assert minimal["policy"] is None
        assert minimal["replicas"] == 1
        assert minimal["zipf_s"] == 1.0
        assert minimal["hardware_limited"] is False
        # Fully in-memory, unbounded runs carry explicit nulls.
        assert minimal["store"] is None
        assert minimal["memory_budget"] is None

        rich = build_stats_record(
            "replicated",
            backend="process",
            shards=2,
            replicas=3,
            policy="least-outstanding",
            zipf_s=1.4,
            queries=10,
            distinct=5,
            qps=100.0,
            seconds=0.1,
            latency=latency,
            scale="tiny",
            identity_checked=True,
            respawns=1,
        )
        assert self.CORE_RECORD_KEYS <= set(rich)
        assert rich["respawns"] == 1  # extras ride along
        # two shards on this host: limited exactly when cores < 2
        import os

        assert rich["hardware_limited"] == ((os.cpu_count() or 1) < 2)
        assert build_stats_record(
            "backend",
            backend="process",
            shards=2,
            queries=1,
            distinct=1,
            qps=1.0,
            seconds=1.0,
            latency=latency,
            scale="tiny",
            hardware_limited=True,
        )["hardware_limited"] is True

    def test_http_throughput_end_to_end(self, workload, tmp_path):
        from repro.experiments.throughput import (
            run_http_throughput,
            summarize_http,
        )

        result = run_http_throughput(
            workload, num_queries=12, offered_qps=2000.0
        )
        assert result.identity_checked
        assert result.ok == 12
        assert result.errors == {}
        assert result.drain_report["served_total"] == 12
        assert result.health["status"] == "ok"
        assert len(result.client_latencies_ms) == 12
        assert (
            result.client_percentile_ms(0.50)
            <= result.client_percentile_ms(0.95)
            <= result.client_percentile_ms(0.99)
        )
        assert "HTTP end-to-end" in summarize_http(result)


class TestOfflinePipelineHarness:
    def test_offline_build_end_to_end(self, workload, tmp_path):
        from repro.experiments.offline import (
            run_offline_build,
            summarize_build,
        )

        result = run_offline_build(
            workload,
            num_queries=15,
            partitions=3,
            shards=2,
            backend="inline",
            warm_dir=tmp_path / "warm",
        )
        assert result.identity_checked
        assert result.serial_build_seconds > 0
        build = result.build_report
        assert len(build.shards) == 3
        assert build.documents == len(workload.corpus.collection)
        assert build.seconds > 0
        assert build.busy_seconds > 0
        assert build.total_bytes > 0
        assert result.cluster_warm.busy_seconds > 0
        assert result.warm_memory["total_bytes"] > 0
        # Hydration from the persisted artifacts hit in full.
        assert result.hydrate_installed > 0
        assert result.hydrate_fetched == 0
        table = summarize_build(result)
        assert "partition0" in table and "total" in table

    def test_offline_build_validates_arguments(self, workload):
        from repro.experiments.offline import run_offline_build

        with pytest.raises(ValueError):
            run_offline_build(workload, partitions=0)
        with pytest.raises(ValueError):
            run_offline_build(workload, shards=0)
        with pytest.raises(ValueError):
            run_offline_build(workload, backend="gpu")

    def test_workload_framework_factory_pickles(self, workload):
        """The harness's per-shard factory must pickle whole (workload
        included) — the spawn-safe half of the process-backend contract."""
        import pickle

        from repro.experiments.throughput import WorkloadFrameworkFactory

        factory = pickle.loads(
            pickle.dumps(WorkloadFrameworkFactory(workload, "AOL"))
        )
        framework = factory(0)
        queries = [t.query for t in workload.testbed.topics]
        want = WorkloadFrameworkFactory(workload, "AOL")(0)
        assert [
            framework.diversify_query(q).ranking for q in queries[:2]
        ] == [want.diversify_query(q).ranking for q in queries[:2]]


class TestColdstartHarness:
    def test_rebuild_vs_attach_with_identity(self, tmp_path):
        from repro.experiments.throughput import (
            run_store_coldstart,
            summarize_coldstart,
        )

        result = run_store_coldstart(
            tmp_path / "cold.sqlite3", scale=TINY, partitions=2
        )
        assert result.identity_checked
        assert result.documents > 0
        assert result.probe_queries == TINY.num_topics
        assert result.rebuild_seconds > 0
        assert result.attach_seconds > 0
        assert result.store_bytes > 0
        # Attaching skips tokenising/indexing entirely; even at tiny
        # scale it must be far cheaper than the rebuild.
        assert result.attach_speedup > 5
        assert result.attach_resident_cold_bytes < result.rebuild_resident_bytes
        assert (
            result.attach_resident_warm_bytes
            >= result.attach_resident_cold_bytes
        )
        assert len(result.probe_latencies_ms) == result.probe_queries
        table = summarize_coldstart(result)
        assert "rebuild from documents" in table
        assert "attach store (cold)" in table

    def test_memory_budget_arm(self, tmp_path):
        from repro.experiments.throughput import run_store_coldstart

        result = run_store_coldstart(
            tmp_path / "cold.sqlite3",
            scale=TINY,
            partitions=2,
            memory_budget=5_000,
        )
        assert result.memory_budget == 5_000
        assert result.identity_checked

    def test_scale_factor_validated(self, tmp_path):
        from repro.experiments.throughput import run_store_coldstart

        with pytest.raises(ValueError):
            run_store_coldstart(tmp_path / "x.sqlite3", scale_factor=0)

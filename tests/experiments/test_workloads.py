"""Tests for the experiment workload builders."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import (
    ExternalWebEngine,
    PAPER_SCALE,
    SMALL_SCALE,
    WorkloadScale,
    build_trec_workload,
    synthetic_task,
)


class TestSyntheticTask:
    def test_shape(self):
        task = synthetic_task(100, num_specs=5)
        assert task.n == 100
        assert len(task.specializations) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_task(0)
        with pytest.raises(ValueError):
            synthetic_task(10, density=0.0)

    def test_deterministic(self):
        a = synthetic_task(50, seed=3)
        b = synthetic_task(50, seed=3)
        assert a.candidates.doc_ids == b.candidates.doc_ids
        d = a.candidates.doc_ids[0]
        for spec, _ in a.specializations:
            assert a.utilities.value(d, spec) == b.utilities.value(d, spec)

    def test_density_controls_sparsity(self):
        sparse = synthetic_task(200, density=0.05, seed=1)
        dense = synthetic_task(200, density=0.8, seed=1)
        assert sparse.utilities.density() < dense.utilities.density()

    def test_zipfian_spec_probabilities(self):
        task = synthetic_task(10, num_specs=4)
        probs = [p for _, p in task.specializations]
        assert probs == sorted(probs, reverse=True)

    def test_relevance_is_distribution(self):
        task = synthetic_task(50)
        assert sum(task.relevance.values()) == pytest.approx(1.0)


class TestScales:
    def test_builtin_scales(self):
        assert SMALL_SCALE.num_topics < PAPER_SCALE.num_topics
        assert PAPER_SCALE.num_topics == 50

    def test_custom_scale_usable(self):
        scale = WorkloadScale(
            name="tiny",
            num_topics=2,
            docs_per_aspect=3,
            background_docs=10,
            log_scale=0.02,
            candidates=30,
            k=5,
            cutoffs=(5,),
        )
        workload = build_trec_workload(scale)
        assert len(workload.testbed.topics) == 2
        assert workload.engine.index.num_documents == len(
            workload.corpus.collection
        )


class TestTrecWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        scale = WorkloadScale(
            name="tiny",
            num_topics=3,
            docs_per_aspect=4,
            background_docs=20,
            log_scale=0.03,
            candidates=40,
            k=8,
            cutoffs=(5,),
        )
        return build_trec_workload(scale, logs=("AOL", "MSN"))

    def test_both_logs_built(self, workload):
        assert set(workload.logs) == {"AOL", "MSN"}
        assert set(workload.miners) == {"AOL", "MSN"}

    def test_miners_trained(self, workload):
        assert workload.miner("AOL").recommender.is_trained

    def test_external_engine_is_prior_mixed(self, workload):
        external = workload.external_engine()
        assert isinstance(external, ExternalWebEngine)
        internal = workload.engine
        query = workload.corpus.topics[0].query
        assert external.search(query, 20).doc_ids != internal.search(
            query, 20
        ).doc_ids


class TestExternalWebEngine:
    def test_prior_is_deterministic(self, small_corpus):
        engine = ExternalWebEngine(small_corpus.collection)
        assert engine._prior("d000001") == engine._prior("d000001")
        assert engine._prior("d000001") != engine._prior("d000002")

    def test_pads_result_page(self, small_corpus):
        engine = ExternalWebEngine(small_corpus.collection)
        results = engine.search("zzz-no-match", k=30)
        assert len(results) == 30  # filled purely from the prior pool

    def test_prior_weight_validation(self, small_corpus):
        with pytest.raises(ValueError):
            ExternalWebEngine(small_corpus.collection, prior_weight=1.2)

    def test_zero_prior_weight_keeps_text_order(self, small_corpus):
        text_only = ExternalWebEngine(small_corpus.collection, prior_weight=0.0)
        query = small_corpus.topics[0].query
        from repro.retrieval.engine import SearchEngine
        from repro.retrieval.models import BM25

        reference = SearchEngine(small_corpus.collection, model=BM25())
        k = 10
        assert (
            text_only.search(query, k).doc_ids[:5]
            == reference.search(query, k).doc_ids[:5]
        )

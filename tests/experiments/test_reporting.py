"""Tests for the plain-text table/series rendering."""

from __future__ import annotations

from repro.experiments.reporting import format_number, render_series, render_table


class TestFormatNumber:
    def test_floats_fixed_precision(self):
        assert format_number(1.23456) == "1.235"
        assert format_number(1.2, precision=1) == "1.2"

    def test_non_floats_passthrough(self):
        assert format_number(42) == "42"
        assert format_number("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "v"], [["a", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len({line.index("  ") for line in lines}) >= 1
        assert lines[0].startswith("name")
        assert "longer" in lines[2]

    def test_title(self):
        text = render_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert text.splitlines()[-1].startswith("a")

    def test_precision_forwarded(self):
        text = render_table(["x"], [[0.123456]], precision=2)
        assert "0.12" in text
        assert "0.123" not in text


class TestRenderSeries:
    def test_shared_x_axis(self):
        series = {"A": {1: 0.5, 2: 0.6}, "B": {2: 0.7, 3: 0.8}}
        text = render_series("k", series)
        lines = text.splitlines()
        assert lines[0].split() == ["k", "A", "B"]
        assert len(lines) == 4  # header + x in {1, 2, 3}

    def test_missing_points_are_nan(self):
        series = {"A": {1: 0.5}, "B": {2: 0.7}}
        text = render_series("k", series)
        assert "nan" in text

"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ambiguity import SpecializationSet
from repro.core.heaps import BoundedMaxHeap
from repro.core.iaselect import IASelect
from repro.core.objectives import (
    max_utility_objective,
    ql_diversify_objective,
)
from repro.core.optselect import OptSelect
from repro.core.task import DiversificationTask
from repro.core.utility import UtilityMatrix, harmonic_number
from repro.core.xquad import XQuAD
from repro.evaluation.metrics import alpha_ndcg, intent_aware_precision
from repro.corpus.trec import DiversityQrels
from repro.evaluation.significance import wilcoxon_signed_rank
from repro.retrieval.analysis import PorterStemmer, tokenize
from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector, cosine, delta

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)
weights = st.dictionaries(
    words, st.floats(min_value=0.01, max_value=10.0), min_size=0, max_size=10
)


@st.composite
def tasks(draw):
    """Random but well-formed diversification tasks."""
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=1, max_value=4))
    doc_ids = [f"d{i}" for i in range(n)]
    scores = [(d, float(n - i)) for i, d in enumerate(doc_ids)]
    spec_names = [f"s{j}" for j in range(m)]
    freqs = {
        s: draw(st.integers(min_value=1, max_value=50)) for s in spec_names
    }
    values = {}
    for s in spec_names:
        row = {}
        for d in doc_ids:
            if draw(st.booleans()):
                row[d] = draw(st.floats(min_value=0.0, max_value=1.0))
        values[s] = row
    lam = draw(st.floats(min_value=0.0, max_value=1.0))
    return DiversificationTask.create(
        query="q",
        candidates=ResultList("q", scores),
        specializations=SpecializationSet.from_frequencies("q", freqs),
        utilities=UtilityMatrix(values, doc_ids),
        lambda_=lam,
        relevance_method="sum",
    )


# ---------------------------------------------------------------------------
# text analysis
# ---------------------------------------------------------------------------

class TestAnalysisProperties:
    @given(st.text(max_size=200))
    def test_tokenize_output_is_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(words)
    def test_stemmer_reaches_fixed_point(self, word):
        # Porter is not idempotent in general (a stem ending in 's' can be
        # stripped again), but iterating must shrink monotonically and
        # terminate at a fixed point within a few rounds.
        stem = PorterStemmer()
        current = word
        for _ in range(6):
            nxt = stem(current)
            assert len(nxt) <= len(current)
            if nxt == current:
                break
            current = nxt
        else:
            assert stem(current) == current

    @given(words)
    def test_stemmer_never_longer(self, word):
        assert len(PorterStemmer()(word)) <= len(word)

    @given(words)
    def test_stemmer_nonempty(self, word):
        assert PorterStemmer()(word)


# ---------------------------------------------------------------------------
# similarity
# ---------------------------------------------------------------------------

class TestSimilarityProperties:
    @given(weights, weights)
    def test_cosine_bounds_and_symmetry(self, w1, w2):
        v1, v2 = TermVector(w1), TermVector(w2)
        sim = cosine(v1, v2)
        assert 0.0 <= sim <= 1.0
        assert sim == cosine(v2, v1)

    @given(weights)
    def test_delta_self_zero_for_nonempty(self, w):
        v = TermVector(w)
        if v:
            assert delta(v, v) < 1e-9

    @given(weights, weights)
    def test_delta_properties(self, w1, w2):
        v1, v2 = TermVector(w1), TermVector(w2)
        d = delta(v1, v2)
        assert 0.0 <= d <= 1.0
        assert d == delta(v2, v1)


# ---------------------------------------------------------------------------
# heaps
# ---------------------------------------------------------------------------

class TestHeapProperties:
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=60),
        st.integers(min_value=0, max_value=10),
    )
    def test_heap_matches_sorted_reference(self, scores, capacity):
        heap = BoundedMaxHeap(capacity)
        for i, score in enumerate(scores):
            heap.push(i, score)
        drained = [s for _, s in heap.drain()]
        assert drained == sorted(scores, reverse=True)[:capacity]

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=30))
    def test_pop_max_monotone(self, scores):
        heap = BoundedMaxHeap(len(scores))
        for i, score in enumerate(scores):
            heap.push(i, score)
        popped = []
        while heap:
            popped.append(heap.pop_max()[1])
        assert popped == sorted(popped, reverse=True)


# ---------------------------------------------------------------------------
# harmonic number
# ---------------------------------------------------------------------------

class TestHarmonicProperties:
    @given(st.integers(min_value=1, max_value=500))
    def test_bounds(self, n):
        h = harmonic_number(n)
        assert math.log(n + 1) <= h <= math.log(n) + 1

    @given(st.integers(min_value=1, max_value=200))
    def test_recurrence(self, n):
        assert harmonic_number(n) == harmonic_number(n - 1) + 1.0 / n


# ---------------------------------------------------------------------------
# diversification invariants
# ---------------------------------------------------------------------------

class TestDiversifierProperties:
    @settings(max_examples=40, deadline=None)
    @given(tasks(), st.integers(min_value=1, max_value=25))
    def test_common_invariants(self, task, k):
        for algorithm in (OptSelect(), XQuAD(), IASelect()):
            selected = algorithm.diversify(task, k)
            assert len(selected) == min(k, task.n)
            assert len(set(selected)) == len(selected)
            assert set(selected) <= set(task.candidates.doc_ids)

    @settings(max_examples=30, deadline=None)
    @given(tasks(), st.integers(min_value=1, max_value=10))
    def test_greedy_objectives_monotone_in_prefix(self, task, k):
        """Every greedy prefix extends the coverage objective
        monotonically (it is a monotone submodular function)."""
        selected = IASelect().diversify(task, k)
        previous = 0.0
        for i in range(1, len(selected) + 1):
            value = ql_diversify_objective(task, selected[:i])
            assert value >= previous - 1e-9
            previous = value

    @settings(max_examples=30, deadline=None)
    @given(tasks())
    def test_optselect_additivity(self, task):
        selected = OptSelect().diversify(task, min(5, task.n))
        total = max_utility_objective(task, selected)
        assert total == sum(task.overall_utility(d) for d in selected)

    @settings(max_examples=30, deadline=None)
    @given(tasks(), st.floats(min_value=0.0, max_value=1.0))
    def test_threshold_never_raises_utility(self, task, c):
        thresholded = task.with_threshold(c)
        for d in task.candidates.doc_ids:
            for spec, _ in task.specializations:
                assert thresholded.utilities.value(d, spec) <= (
                    task.utilities.value(d, spec) + 1e-12
                )


# ---------------------------------------------------------------------------
# specialization sets
# ---------------------------------------------------------------------------

class TestSpecializationProperties:
    @given(
        st.dictionaries(
            words, st.integers(min_value=1, max_value=1000), min_size=1, max_size=10
        )
    )
    def test_from_frequencies_is_distribution(self, freqs):
        s = SpecializationSet.from_frequencies("q", freqs)
        assert sum(p for _, p in s) == 1.0 or abs(
            sum(p for _, p in s) - 1.0
        ) < 1e-9
        probs = [p for _, p in s]
        assert probs == sorted(probs, reverse=True)

    @given(
        st.dictionaries(
            words, st.integers(min_value=1, max_value=1000), min_size=2, max_size=10
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_top_k_is_distribution(self, freqs, k):
        s = SpecializationSet.from_frequencies("q", freqs).top(k)
        assert len(s) <= k
        assert abs(sum(p for _, p in s) - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

@st.composite
def judged_rankings(draw):
    docs = [f"d{i}" for i in range(10)]
    qrels = DiversityQrels()
    n_subtopics = draw(st.integers(min_value=1, max_value=4))
    any_judged = False
    for s in range(1, n_subtopics + 1):
        for d in docs:
            if draw(st.booleans()):
                qrels.add(1, s, d)
                any_judged = True
    if not any_judged:
        qrels.add(1, 1, docs[0])
    ranking = draw(st.permutations(docs))
    return ranking, qrels


class TestMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(judged_rankings(), st.integers(min_value=1, max_value=10))
    def test_alpha_ndcg_bounds(self, data, cutoff):
        ranking, qrels = data
        value = alpha_ndcg(ranking, 1, qrels, cutoff=cutoff)
        assert 0.0 <= value <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(judged_rankings(), st.integers(min_value=1, max_value=10))
    def test_ia_precision_bounds(self, data, cutoff):
        ranking, qrels = data
        value = intent_aware_precision(ranking, 1, qrels, cutoff=cutoff)
        assert 0.0 <= value <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(judged_rankings())
    def test_greedy_ideal_is_upper_bound(self, data):
        """No permutation of the judged docs can beat α-NDCG = 1 + ε."""
        ranking, qrels = data
        assert alpha_ndcg(ranking, 1, qrels, cutoff=10) <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# significance
# ---------------------------------------------------------------------------

class TestWilcoxonProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-10, max_value=10),
                st.floats(min_value=-10, max_value=10),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_p_value_in_unit_interval(self, pairs):
        a = [x for x, _ in pairs]
        b = [y for _, y in pairs]
        result = wilcoxon_signed_rank(a, b)
        assert 0.0 <= result.p_value <= 1.0
        assert result.w_plus >= 0 and result.w_minus >= 0

"""Tests for the DPH / BM25 / TF-IDF weighting models."""

from __future__ import annotations

import pytest

from repro.retrieval.models import BM25, DPH, TFIDF, get_model

COMMON = dict(
    document_frequency=10,
    collection_frequency=50,
    num_documents=1000,
    average_document_length=100.0,
)


@pytest.fixture(params=[DPH(), BM25(), TFIDF()], ids=["DPH", "BM25", "TFIDF"])
def model(request):
    return request.param


class TestAllModels:
    def test_zero_tf_scores_zero(self, model):
        assert model.score(0, 100, **COMMON) == 0.0

    def test_positive_for_discriminative_match(self, model):
        assert model.score(5, 100, **COMMON) > 0.0

    def test_monotone_in_tf_for_normal_range(self, model):
        low = model.score(1, 100, **COMMON)
        high = model.score(5, 100, **COMMON)
        assert high > low

    def test_rare_terms_score_higher(self, model):
        rare = model.score(
            3, 100, document_frequency=2, collection_frequency=4,
            num_documents=1000, average_document_length=100.0,
        )
        common = model.score(
            3, 100, document_frequency=500, collection_frequency=5000,
            num_documents=1000, average_document_length=100.0,
        )
        assert rare > common

    def test_key_frequency_scales_contribution(self, model):
        single = model.score(3, 100, **COMMON, key_frequency=1.0)
        double = model.score(3, 100, **COMMON, key_frequency=2.0)
        assert double > single


class TestDPH:
    def test_no_parameters_needed(self):
        assert DPH().name == "DPH"

    def test_full_document_term_does_not_crash(self):
        # f = tf/dl = 1 must not produce log(0) or NaN.
        score = DPH().score(50, 50, **COMMON)
        assert score == score  # not NaN

    def test_zero_doc_length_scores_zero(self):
        assert DPH().score(1, 0, **COMMON) == 0.0

    def test_longer_documents_penalised(self):
        short = DPH().score(3, 50, **COMMON)
        long = DPH().score(3, 500, **COMMON)
        assert short > long


class TestBM25:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25(k1=-1)
        with pytest.raises(ValueError):
            BM25(b=1.5)

    def test_b_zero_disables_length_normalisation(self):
        model = BM25(b=0.0)
        assert model.score(3, 50, **COMMON) == pytest.approx(
            model.score(3, 500, **COMMON)
        )

    def test_tf_saturation(self):
        model = BM25()
        gain_low = model.score(2, 100, **COMMON) - model.score(1, 100, **COMMON)
        gain_high = model.score(20, 100, **COMMON) - model.score(19, 100, **COMMON)
        assert gain_low > gain_high


class TestTFIDF:
    def test_idf_uses_document_frequency(self):
        model = TFIDF()
        assert model.score(
            3, 100, document_frequency=1, collection_frequency=1,
            num_documents=1000, average_document_length=100.0,
        ) > model.score(
            3, 100, document_frequency=100, collection_frequency=100,
            num_documents=1000, average_document_length=100.0,
        )


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_model("dph").name == "DPH"
        assert get_model("BM25").name == "BM25"
        assert get_model("tf_idf").name == "TF_IDF"

    def test_kwargs_forwarded(self):
        model = get_model("bm25", k1=2.0)
        assert model.k1 == 2.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown weighting model"):
            get_model("pagerank")

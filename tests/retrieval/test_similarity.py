"""Tests for term vectors, cosine and the δ distance of Eq. (2)."""

from __future__ import annotations

import pytest

from repro.retrieval.analysis import Analyzer
from repro.retrieval.similarity import TermVector, cosine, delta


class TestTermVector:
    def test_l2_normalised(self):
        v = TermVector({"a": 3.0, "b": 4.0})
        assert sum(w * w for w in v.weights.values()) == pytest.approx(1.0)

    def test_empty_vector(self):
        v = TermVector({})
        assert not v
        assert v.norm == 0.0

    def test_zero_weights_dropped(self):
        v = TermVector({"a": 1.0, "b": 0.0})
        assert "b" not in v.weights

    def test_from_terms_counts(self):
        v = TermVector.from_terms(["a", "a", "b"])
        assert v.weights["a"] > v.weights["b"]

    def test_from_text_uses_analyzer(self):
        v = TermVector.from_text("the running leopards")
        assert set(v.weights) == {"run", "leopard"}

    def test_from_text_idf_weighting(self):
        idf = {"appl": 5.0, "fruit": 0.1}
        v = TermVector.from_text_idf("apple fruit", idf)
        assert v.weights["appl"] > v.weights["fruit"]

    def test_from_text_idf_default(self):
        v = TermVector.from_text_idf("apple fruit", {}, default_idf=1.0)
        assert set(v.weights) == {"appl", "fruit"}

    def test_dot_iterates_smaller_side(self):
        small = TermVector({"a": 1.0})
        big = TermVector({ch: 1.0 for ch in "abcdefgh"})
        assert small.dot(big) == pytest.approx(big.dot(small))

    def test_len(self):
        assert len(TermVector({"a": 1.0, "b": 2.0})) == 2


class TestCosine:
    def test_identical_vectors(self):
        v = TermVector({"a": 2.0, "b": 1.0})
        assert cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine(TermVector({"a": 1.0}), TermVector({"b": 1.0})) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        sim = cosine(TermVector({"a": 1.0, "b": 1.0}), TermVector({"a": 1.0}))
        assert 0.0 < sim < 1.0

    def test_symmetry(self):
        v1 = TermVector({"a": 1.0, "b": 3.0})
        v2 = TermVector({"b": 2.0, "c": 1.0})
        assert cosine(v1, v2) == pytest.approx(cosine(v2, v1))

    def test_empty_vector_similarity_zero(self):
        v = TermVector({"a": 1.0})
        empty = TermVector({})
        assert cosine(v, empty) == 0.0
        assert cosine(empty, empty) == 0.0

    def test_clamped_to_unit(self):
        v = TermVector({"a": 1e-8, "b": 1e8})
        assert cosine(v, v) <= 1.0


class TestDelta:
    """δ must satisfy the paper's stated properties (Section 3.1)."""

    def test_identity_of_indiscernibles(self):
        v = TermVector({"a": 1.0, "b": 2.0})
        assert delta(v, v) == pytest.approx(0.0)

    def test_symmetric(self):
        v1 = TermVector({"a": 1.0})
        v2 = TermVector({"a": 1.0, "b": 1.0})
        assert delta(v1, v2) == pytest.approx(delta(v2, v1))

    def test_non_negative_and_bounded(self):
        v1 = TermVector({"a": 1.0})
        v2 = TermVector({"b": 1.0})
        assert 0.0 <= delta(v1, v2) <= 1.0

    def test_disjoint_vectors_distance_one(self):
        assert delta(TermVector({"a": 1.0}), TermVector({"b": 1.0})) == 1.0

    def test_analyzer_consistency(self):
        analyzer = Analyzer()
        v1 = TermVector.from_text("apple computers", analyzer)
        v2 = TermVector.from_text("apple computer", analyzer)
        assert delta(v1, v2) == pytest.approx(0.0)

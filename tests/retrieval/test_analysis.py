"""Tests for tokenization, stopwords and the Porter stemmer."""

from __future__ import annotations

import pytest

from repro.retrieval.analysis import (
    ENGLISH_STOPWORDS,
    Analyzer,
    PorterStemmer,
    tokenize,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Apple IPHONE") == ["apple", "iphone"]

    def test_splits_on_punctuation(self):
        assert tokenize("obama's family-tree.") == ["obama", "s", "family", "tree"]

    def test_keeps_digits(self):
        assert tokenize("trec 2009 web") == ["trec", "2009", "web"]

    def test_mixed_alphanumerics_stay_joined(self):
        assert tokenize("clueweb09") == ["clueweb09"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! --- ...") == []

    def test_unicode_outside_ascii_is_separator(self):
        assert tokenize("café") == ["caf"]


class TestStopwords:
    def test_common_words_present(self):
        for word in ("the", "of", "and", "is", "to"):
            assert word in ENGLISH_STOPWORDS

    def test_content_words_absent(self):
        for word in ("apple", "leopard", "search", "diversification"):
            assert word not in ENGLISH_STOPWORDS

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ENGLISH_STOPWORDS.add("x")


class TestPorterStemmer:
    """Classic vocabulary drawn from Porter's published examples."""

    @pytest.fixture(scope="class")
    def stem(self):
        return PorterStemmer()

    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            # step 1a
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            # step 1b
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            # step 1b cleanup
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            # step 1c
            ("happy", "happi"),
            ("sky", "sky"),
            # step 2
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            # step 3
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            # step 4
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            # step 5
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_porter_examples(self, stem, word, expected):
        assert stem(word) == expected

    def test_short_words_unchanged(self, stem):
        assert stem("a") == "a"
        assert stem("be") == "be"
        assert stem("is") == "is"

    def test_idempotent_on_common_stems(self, stem):
        for word in ("run", "runs", "running", "runner"):
            once = stem(word)
            assert stem(once) == once

    def test_callable_protocol(self, stem):
        assert stem("walking") == stem.stem("walking")

    def test_y_as_vowel_handling(self, stem):
        # 'y' after consonant acts as vowel: "syzygy" has vowels.
        assert stem("crying") == "cry"


class TestAnalyzer:
    def test_default_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("The leopards are running") == ["leopard", "run"]

    def test_stopwords_removed_before_stemming(self):
        analyzer = Analyzer()
        # "this" is a stopword and must not be stemmed into a content term.
        assert "thi" not in analyzer.analyze("this running")

    def test_no_stemming_option(self):
        analyzer = Analyzer(use_stemming=False)
        assert analyzer.analyze("running leopards") == ["running", "leopards"]

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords={"leopard"})
        assert "leopard" not in analyzer.analyze("the leopard runs")
        # default stopwords disabled → "the" survives (stemmed)
        assert "the" in analyzer.analyze("the leopard runs")

    def test_empty_stopwords_keeps_everything(self):
        analyzer = Analyzer(stopwords=())
        assert analyzer.analyze("the apple") == ["the", "appl"]

    def test_iter_terms_is_lazy_equivalent(self):
        analyzer = Analyzer()
        text = "diversification of search results"
        assert list(analyzer.iter_terms(text)) == analyzer.analyze(text)

    def test_preserves_order_and_duplicates(self):
        analyzer = Analyzer(stopwords=(), use_stemming=False)
        assert analyzer.analyze("b a b") == ["b", "a", "b"]

"""Tests for the inverted index."""

from __future__ import annotations

import pytest

from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.index import InvertedIndex, PostingList


class TestPostingList:
    def test_append_accumulates_statistics(self):
        postings = PostingList()
        postings.append(0, 3)
        postings.append(2, 1)
        assert postings.document_frequency == 2
        assert postings.collection_frequency == 4
        assert len(postings) == 2

    def test_out_of_order_append_rejected(self):
        postings = PostingList()
        postings.append(5, 1)
        with pytest.raises(ValueError):
            postings.append(3, 1)

    def test_iteration_yields_postings(self):
        postings = PostingList()
        postings.append(1, 2)
        [(p)] = list(postings)
        assert (p.ordinal, p.tf) == (1, 2)


class TestInvertedIndex:
    @pytest.fixture()
    def index(self, tiny_collection):
        return InvertedIndex.from_collection(tiny_collection)

    def test_document_count(self, index, tiny_collection):
        assert index.num_documents == len(tiny_collection)

    def test_terms_are_stemmed(self, index):
        # "computer" stems to "comput"
        assert "comput" in index
        assert "computer" not in index

    def test_stopwords_not_indexed(self, index):
        assert "the" not in index
        assert "and" not in index

    def test_document_frequency(self, index):
        # "appl" occurs in apple-pc, apple-fruit, apple-both
        assert index.document_frequency("appl") == 3

    def test_collection_frequency_counts_repeats(self, index):
        # Bodies contribute 4 occurrences (apple-both has two) and the
        # titles of apple-pc / apple-fruit add one each.
        assert index.collection_frequency("appl") == 6

    def test_unknown_term(self, index):
        assert index.document_frequency("zzz") == 0
        assert index.collection_frequency("zzz") == 0
        assert index.postings("zzz") is None

    def test_doc_id_round_trip(self, index):
        ordinal = index.ordinal("banana")
        assert index.doc_id(ordinal) == "banana"

    def test_document_length_excludes_stopwords(self):
        index = InvertedIndex()
        index.index_document(Document("d", "the apple and the tree"))
        assert index.document_length(0) == 2

    def test_average_document_length(self):
        index = InvertedIndex()
        index.index_document(Document("a", "one two three"))
        index.index_document(Document("b", "one"))
        assert index.average_document_length == 2.0

    def test_empty_index_statistics(self):
        index = InvertedIndex()
        assert index.num_documents == 0
        assert index.average_document_length == 0.0
        assert index.num_terms == 0

    def test_duplicate_doc_id_rejected(self):
        index = InvertedIndex()
        index.index_document(Document("d", "x y"))
        with pytest.raises(ValueError):
            index.index_document(Document("d", "z"))

    def test_title_is_indexed(self):
        index = InvertedIndex()
        index.index_document(Document("d", "body", title="leopard"))
        assert index.document_frequency("leopard") == 1

    def test_vocabulary_enumerates_terms(self, index):
        vocab = set(index.vocabulary())
        assert "appl" in vocab and "banana" in vocab

    def test_custom_analyzer_respected(self):
        index = InvertedIndex(Analyzer(stopwords=(), use_stemming=False))
        index.index_document(Document("d", "the running"))
        assert "running" in index and "the" in index

    def test_incremental_indexing(self):
        index = InvertedIndex()
        index.index_document(Document("a", "apple"))
        before = index.document_frequency("appl")
        index.index_document(Document("b", "apple apple"))
        assert index.document_frequency("appl") == before + 1
        assert index.total_tokens == 3

"""Tests for incremental store writes: ``append_epoch``, epoch-aware
attach (``expected_epoch`` / :class:`StaleEpochError`), and the
store-backed engine's ``refresh()`` path.

The store-side identity gate mirrors the in-memory one: a store that
absorbed appends must serve byte-identically to a store written from
scratch over the final collection, and a reader must be able to tell —
with a typed, self-describing error — when it attached a store that has
been rolled back behind the epoch it needs.
"""

from __future__ import annotations

import pickle

import pytest

from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.sharding import PartitionedSearchEngine
from repro.retrieval.store import (
    IndexStore,
    StaleEpochError,
    StoreBackedSearchEngine,
    StoreError,
    append_epoch,
    write_store,
)

PARTITIONS = 3
PROBES = ["apple", "banana fig", "cherry grape", "durian elder apple"]


def make_docs(n: int, prefix: str = "d") -> list[Document]:
    vocab = ["apple", "banana", "cherry", "durian", "elder", "fig", "grape"]
    docs = []
    for i in range(n):
        words = [vocab[(i + j) % len(vocab)] for j in range(3 + i % 4)]
        docs.append(Document(f"{prefix}{i}", " ".join(words), title=f"t{i}"))
    return docs


def build_store(path, docs):
    engine = PartitionedSearchEngine(
        DocumentCollection(docs), num_partitions=PARTITIONS
    )
    write_store(path, engine)
    return engine


def assert_engines_identical(got, want, queries=PROBES):
    for query in queries:
        g, w = got.search(query, k=50), want.search(query, k=50)
        assert g.doc_ids == w.doc_ids, query
        assert g.scores == w.scores, query


class TestAppendEpoch:
    def test_append_identical_to_rewritten_store(self, tmp_path):
        docs = make_docs(18)
        incremental = tmp_path / "incremental.sqlite3"
        build_store(incremental, docs)
        adds = make_docs(4, prefix="n")
        assert append_epoch(incremental, adds[:2], ["d3"]) == 1
        assert append_epoch(incremental, adds[2:], ["n0", "d10"]) == 2

        removed = {"d3", "n0", "d10"}
        final = [d for d in docs + adds[:2] if d.doc_id not in removed]
        final += adds[2:]
        scratch = tmp_path / "scratch.sqlite3"
        build_store(scratch, final)

        live = StoreBackedSearchEngine(incremental)
        fresh = StoreBackedSearchEngine(scratch)
        assert live.epoch == 2
        assert live.collection.doc_ids == fresh.collection.doc_ids
        assert_engines_identical(live, fresh)

    def test_untouched_partitions_keep_their_epoch_tag(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        docs = make_docs(18)
        build_store(path, docs)
        # A pure append touches only the shards its documents route to.
        append_epoch(path, [Document("solo", "zebra yak")], [])
        store = IndexStore(path)
        try:
            tags = [
                store.partition_epoch(p) for p in range(store.num_partitions)
            ]
        finally:
            store.close()
        assert store.store_epoch == 1
        assert tags.count(1) == 1  # exactly one shard rewritten
        assert tags.count(0) == store.num_partitions - 1

    def test_validation_errors(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        build_store(path, make_docs(8))
        with pytest.raises(StoreError, match="must change the collection"):
            append_epoch(path)
        with pytest.raises(StoreError, match="cannot remove unknown doc_id"):
            append_epoch(path, (), ["ghost"])
        with pytest.raises(StoreError, match="duplicate doc_id in batch"):
            append_epoch(
                path, [Document("x", "a b"), Document("x", "c d")], ()
            )
        with pytest.raises(StoreError, match="already stored"):
            append_epoch(path, [Document("d2", "a b")], ())
        # No failed attempt advanced the epoch.
        store = IndexStore(path)
        try:
            assert store.store_epoch == 0
        finally:
            store.close()

    def test_remove_then_reingest_moves_to_end(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        docs = make_docs(10)
        build_store(path, docs)
        replacement = Document("d4", "apple apple zebra")
        append_epoch(path, [replacement], ["d4"])
        final = [d for d in docs if d.doc_id != "d4"] + [replacement]
        scratch = tmp_path / "scratch.sqlite3"
        build_store(scratch, final)
        live = StoreBackedSearchEngine(path)
        fresh = StoreBackedSearchEngine(scratch)
        assert live.collection.doc_ids == fresh.collection.doc_ids
        assert_engines_identical(live, fresh, PROBES + ["zebra"])


class TestRefresh:
    def test_refresh_advances_to_latest_epoch(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        docs = make_docs(12)
        build_store(path, docs)
        engine = StoreBackedSearchEngine(path)
        assert engine.epoch == 0
        append_epoch(path, [Document("n0", "zebra apple")], ["d1"])
        append_epoch(path, (), ["d2"])
        # Until refresh() the attached engine keeps serving its epoch.
        assert engine.epoch == 0
        assert engine.refresh() == 2
        assert engine.epoch == 2
        final = [
            d for d in docs if d.doc_id not in {"d1", "d2"}
        ] + [Document("n0", "zebra apple")]
        scratch = tmp_path / "scratch.sqlite3"
        build_store(scratch, final)
        assert_engines_identical(
            engine, StoreBackedSearchEngine(scratch), PROBES + ["zebra"]
        )

    def test_refresh_noop_at_latest(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        build_store(path, make_docs(8))
        engine = StoreBackedSearchEngine(path)
        assert engine.refresh() == 0
        assert engine.epoch == 0

    def test_refresh_detects_store_rollback(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        docs = make_docs(8)
        build_store(path, docs)
        append_epoch(path, [Document("n0", "zebra")], [])
        engine = StoreBackedSearchEngine(path)
        assert engine.epoch == 1
        # The store's meta is rolled back in place behind the engine's
        # back (a botched restore-from-backup); refresh must refuse to
        # time-travel the collection.
        import sqlite3

        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE meta SET value = '0' WHERE key = 'store_epoch'"
            )
        with pytest.raises(StaleEpochError) as excinfo:
            engine.refresh()
        assert excinfo.value.found == 0
        assert excinfo.value.expected == 1


class TestStaleAttach:
    def test_attach_below_expected_epoch_fails_fast(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        build_store(path, make_docs(8))
        append_epoch(path, [Document("n0", "zebra")], [])
        with pytest.raises(StaleEpochError) as excinfo:
            StoreBackedSearchEngine(path, expected_epoch=5)
        error = excinfo.value
        assert error.found == 1
        assert error.expected == 5
        assert "stale epoch 1" in str(error)
        assert "at least epoch 5" in str(error)
        assert isinstance(error, StoreError)

    def test_attach_at_or_above_expected_epoch_succeeds(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        build_store(path, make_docs(8))
        append_epoch(path, [Document("n0", "zebra")], [])
        engine = StoreBackedSearchEngine(path, expected_epoch=1)
        assert engine.epoch == 1
        # A newer store than expected is fine — the floor is the
        # respawn contract, not an exact pin.
        newer = StoreBackedSearchEngine(path, expected_epoch=0)
        assert newer.epoch == 1

    def test_pickle_recipe_carries_epoch_floor(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        docs = make_docs(8)
        build_store(path, docs)
        append_epoch(path, [Document("n0", "zebra apple")], [])
        engine = StoreBackedSearchEngine(path)
        blob = pickle.dumps(engine)
        clone = pickle.loads(blob)
        assert clone.epoch == 1
        assert_engines_identical(clone, engine, PROBES + ["zebra"])
        # Roll the store back behind the pickled floor: rehydration (the
        # replica-respawn path) must fail with the typed error instead
        # of silently serving the older collection.
        build_store(path, docs)
        with pytest.raises(StaleEpochError) as excinfo:
            pickle.loads(blob)
        assert excinfo.value.found == 0
        assert excinfo.value.expected == 1

"""Tests for query-biased snippet extraction."""

from __future__ import annotations

import pytest

from repro.retrieval.snippets import SnippetExtractor


@pytest.fixture()
def extractor():
    return SnippetExtractor(max_chars=120)


class TestSnippetExtractor:
    def test_respects_budget(self, extractor):
        text = "word " * 500
        snippet = extractor.extract("word", "d1", text)
        assert len(snippet.text) <= 120

    def test_snippet_carries_doc_id(self, extractor):
        assert extractor.extract("q", "d42", "some text").doc_id == "d42"

    def test_title_included_first(self, extractor):
        snippet = extractor.extract("query", "d1", "body only here", title="The Title")
        assert snippet.text.startswith("The Title")

    def test_query_biased_window_selection(self):
        extractor = SnippetExtractor(max_chars=60)
        text = (
            "nothing relevant here at all in this opening sentence. "
            "the leopard tank is a german vehicle. "
            "more filler content afterwards follows here."
        )
        snippet = extractor.extract("leopard tank", "d1", text)
        assert "leopard" in snippet.text

    def test_sentences_preferred_as_windows(self, extractor):
        text = "first sentence here. second sentence about apples. third one."
        snippet = extractor.extract("apples", "d1", text)
        assert "apples" in snippet.text

    def test_fixed_windows_without_punctuation(self):
        extractor = SnippetExtractor(max_chars=80, window_terms=5)
        tokens = ["filler"] * 30 + ["needle"] + ["filler"] * 30
        snippet = extractor.extract("needle", "d1", " ".join(tokens))
        assert "needle" in snippet.text

    def test_empty_document(self, extractor):
        assert extractor.extract("q", "d1", "").text == ""

    def test_empty_query_falls_back_to_leading_text(self, extractor):
        snippet = extractor.extract("", "d1", "alpha beta gamma. delta.")
        assert snippet.text  # still produces a surrogate

    def test_selected_windows_in_document_order(self):
        extractor = SnippetExtractor(max_chars=200)
        text = "apple one. filler. apple two. filler. apple three."
        snippet = extractor.extract("apple", "d1", text)
        first = snippet.text.find("one")
        second = snippet.text.find("two")
        assert -1 < first < second or second == -1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SnippetExtractor(max_chars=0)
        with pytest.raises(ValueError):
            SnippetExtractor(window_terms=0)

    def test_len_protocol(self, extractor):
        snippet = extractor.extract("q", "d", "abc def")
        assert len(snippet) == len(snippet.text)

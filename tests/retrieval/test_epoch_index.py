"""Tests for epoch-versioned live updates at the index and engine layer.

The identity contract is byte-level: after any sequence of
``apply_updates`` batches, the engine must be indistinguishable —
ordinals, global statistics, rankings AND scores — from a from-scratch
build over the final collection (survivors in their original insertion
order, added documents appended in batch order).  The snapshot side of
the contract is isolation: a query pinned to epoch N never observes any
part of epoch N+1, even when the publish lands mid-query.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.index import InvertedIndex
from repro.retrieval.sharding import PartitionedSearchEngine


def make_docs(n: int, prefix: str = "d") -> list[Document]:
    vocab = ["apple", "banana", "cherry", "durian", "elder", "fig", "grape"]
    docs = []
    for i in range(n):
        words = [vocab[(i + j) % len(vocab)] for j in range(3 + i % 4)]
        docs.append(Document(f"{prefix}{i}", " ".join(words), title=f"t{i}"))
    return docs


def assert_indexes_identical(got: InvertedIndex, want: InvertedIndex):
    """Full structural equality — ids, ordinals, lengths, postings."""
    assert got.num_documents == want.num_documents
    assert got.total_tokens == want.total_tokens
    assert [got.doc_id(o) for o in range(got.num_documents)] == [
        want.doc_id(o) for o in range(want.num_documents)
    ]
    assert [got.document_length(o) for o in range(got.num_documents)] == [
        want.document_length(o) for o in range(want.num_documents)
    ]
    assert sorted(got.vocabulary()) == sorted(want.vocabulary())
    for term in want.vocabulary():
        g, w = got.postings(term), want.postings(term)
        assert g.ordinals == w.ordinals, term
        assert g.tfs == w.tfs, term
        assert g.collection_frequency == w.collection_frequency, term


def assert_engines_identical(got, want, queries):
    for query in queries:
        g, w = got.search(query, k=50), want.search(query, k=50)
        assert g.doc_ids == w.doc_ids, query
        assert g.scores == w.scores, query


PROBES = ["apple", "banana fig", "cherry grape", "durian elder apple"]


class TestIndexRemoval:
    def test_removal_identical_to_rebuild(self):
        docs = make_docs(9)
        index = InvertedIndex.from_collection(DocumentCollection(docs))
        index.remove_document("d3")
        index.remove_document("d0")
        survivors = [d for d in docs if d.doc_id not in {"d3", "d0"}]
        rebuilt = InvertedIndex.from_collection(DocumentCollection(survivors))
        assert_indexes_identical(index, rebuilt)

    def test_remove_then_reindex_moves_document_to_end(self):
        docs = make_docs(5)
        index = InvertedIndex.from_collection(DocumentCollection(docs))
        index.remove_document("d1")
        index.index_document(docs[1])
        reordered = [d for d in docs if d.doc_id != "d1"] + [docs[1]]
        rebuilt = InvertedIndex.from_collection(DocumentCollection(reordered))
        assert_indexes_identical(index, rebuilt)

    def test_remove_unknown_raises(self):
        index = InvertedIndex.from_collection(DocumentCollection(make_docs(3)))
        with pytest.raises(ValueError, match="not indexed"):
            index.remove_document("nope")

    def test_term_leaves_vocabulary_when_last_posting_goes(self):
        docs = [
            Document("a", "apple banana"),
            Document("b", "banana zebra"),
        ]
        index = InvertedIndex.from_collection(DocumentCollection(docs))
        assert "zebra" in index
        index.remove_document("b")
        assert "zebra" not in index
        assert "banana" in index

    def test_copy_is_independent(self):
        index = InvertedIndex.from_collection(DocumentCollection(make_docs(6)))
        clone = index.copy()
        clone.remove_document("d2")
        clone.index_document(Document("extra", "apple zebra"))
        assert index.num_documents == 6
        assert "zebra" not in index
        assert index.ordinal("d3") == 3
        assert clone.ordinal("d3") == 2


@pytest.fixture()
def engine():
    return PartitionedSearchEngine(
        DocumentCollection(make_docs(20)), num_partitions=3
    )


class TestEngineEpochs:
    def test_apply_updates_identical_to_rebuild(self, engine):
        docs = make_docs(20)
        adds1 = make_docs(3, prefix="n")
        engine.apply_updates(add_documents=adds1, remove_doc_ids=["d4", "d11"])
        adds2 = [Document("n9", "fig grape apple apple")]
        engine.apply_updates(add_documents=adds2, remove_doc_ids=["n1", "d0"])
        removed = {"d4", "d11", "n1", "d0"}
        final = [d for d in docs + adds1 if d.doc_id not in removed] + adds2
        fresh = PartitionedSearchEngine(
            DocumentCollection(final), num_partitions=3
        )
        assert engine.epoch == 2
        assert engine.collection.doc_ids == fresh.collection.doc_ids
        assert_engines_identical(engine, fresh, PROBES)

    def test_remove_then_reingest_same_batch_moves_to_end(self, engine):
        docs = make_docs(20)
        replacement = Document("d5", "apple apple zebra")
        engine.apply_updates(
            add_documents=[replacement], remove_doc_ids=["d5"]
        )
        final = [d for d in docs if d.doc_id != "d5"] + [replacement]
        fresh = PartitionedSearchEngine(
            DocumentCollection(final), num_partitions=3
        )
        assert engine.collection.doc_ids == fresh.collection.doc_ids
        assert_engines_identical(engine, fresh, PROBES + ["zebra"])

    def test_remove_then_reingest_across_batches(self, engine):
        docs = make_docs(20)
        engine.apply_updates(remove_doc_ids=["d2"])
        engine.apply_updates(add_documents=[docs[2]])
        final = [d for d in docs if d.doc_id != "d2"] + [docs[2]]
        fresh = PartitionedSearchEngine(
            DocumentCollection(final), num_partitions=3
        )
        assert engine.collection.doc_ids == fresh.collection.doc_ids
        assert_engines_identical(engine, fresh, PROBES)

    def test_delta_describes_the_batch(self, engine):
        snapshot = engine.apply_updates(
            add_documents=[Document("n0", "zebra yak")],
            remove_doc_ids=["d7"],
        )
        delta = snapshot.delta
        assert delta.added == ("n0",)
        assert delta.removed == ("d7",)
        assert delta.stats_changed  # token totals moved
        assert {"zebra", "yak"} <= set(delta.terms)
        assert delta.changed_ids == frozenset({"n0", "d7"})

    def test_balanced_swap_reports_stats_unchanged(self, engine):
        # Replace a doc with one of the same analyzed length: N and
        # total_tokens are preserved, so cached scores stay valid and
        # the delta says so.
        old = engine.collection["d0"]
        length = len(Analyzer().analyze(old.full_text))
        replacement = Document("swap0", " ".join(["zebra"] * length))
        snapshot = engine.apply_updates(
            add_documents=[replacement], remove_doc_ids=["d0"]
        )
        assert not snapshot.delta.stats_changed

    def test_validation_errors(self, engine):
        with pytest.raises(ValueError, match="must change the collection"):
            engine.apply_updates()
        with pytest.raises(ValueError, match="duplicate removal"):
            engine.apply_updates(remove_doc_ids=["d1", "d1"])
        with pytest.raises(ValueError, match="unknown doc_id"):
            engine.apply_updates(remove_doc_ids=["ghost"])
        with pytest.raises(ValueError, match="duplicate doc_id in batch"):
            engine.apply_updates(
                add_documents=[Document("x", "a b"), Document("x", "c d")]
            )
        with pytest.raises(ValueError, match="duplicate doc_id"):
            engine.apply_updates(add_documents=[Document("d3", "a b")])
        # A failed preparation publishes nothing.
        assert engine.epoch == 0

    def test_stale_preparation_refused(self, engine):
        first = engine.prepare_epoch(add_documents=[Document("a1", "apple")])
        second = engine.prepare_epoch(add_documents=[Document("a2", "fig")])
        assert engine.publish(first) == 1
        with pytest.raises(ValueError, match="stale epoch preparation"):
            engine.publish(second)
        assert engine.epoch == 1
        assert "a2" not in engine.collection

    def test_prepare_does_not_disturb_serving(self, engine):
        before = engine.search("apple", k=20)
        prepared = engine.prepare_epoch(
            add_documents=[Document("n0", "apple apple apple")],
            remove_doc_ids=["d0"],
        )
        # Prepared but unpublished: the served epoch is untouched.
        assert engine.epoch == 0
        assert "d0" in engine.collection
        mid = engine.search("apple", k=20)
        assert mid.doc_ids == before.doc_ids
        assert mid.scores == before.scores
        engine.publish(prepared)
        assert engine.epoch == 1
        assert "d0" not in engine.collection

    def test_pinned_query_races_publish(self, engine):
        """A query pinned to epoch N sees none of epoch N+1, even when
        the publish lands while the query is mid-flight."""
        reference = engine.search("apple", k=20)
        in_pin = threading.Event()
        release = threading.Event()
        pinned_result = {}

        def pinned_reader():
            with engine.pinned() as snap:
                in_pin.set()
                assert release.wait(10)
                # The publish has happened by now; this thread must
                # still read epoch N in full.
                pinned_result["epoch"] = snap.epoch
                pinned_result["results"] = engine.search("apple", k=20)
                pinned_result["has_new"] = "racer" in engine.collection

        reader = threading.Thread(target=pinned_reader)
        reader.start()
        assert in_pin.wait(10)
        engine.apply_updates(
            add_documents=[Document("racer", "apple apple apple apple")]
        )
        assert engine.epoch == 1
        release.set()
        reader.join(10)
        assert pinned_result["epoch"] == 0
        assert not pinned_result["has_new"]
        assert pinned_result["results"].doc_ids == reference.doc_ids
        assert pinned_result["results"].scores == reference.scores
        # Unpinned reads on the main thread see epoch N+1.
        assert "racer" in engine.collection
        assert "racer" in engine.search("apple", k=20).doc_ids

    def test_pickle_round_trip_after_updates(self, engine):
        engine.apply_updates(
            add_documents=make_docs(2, prefix="p"), remove_doc_ids=["d1"]
        )
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.epoch == engine.epoch
        assert clone.collection.doc_ids == engine.collection.doc_ids
        assert_engines_identical(clone, engine, PROBES)
        # The restored engine can keep publishing epochs.
        clone.apply_updates(remove_doc_ids=["p0"])
        assert clone.epoch == engine.epoch + 1

"""Tests for the durable index store: write/attach identity, posting
page cache bounds, the enforced memory budget with LRU partition
eviction, schema validation, concurrent attach, and the warm-artifact
round trip through SQLite."""

from __future__ import annotations

import multiprocessing
import pickle
import sqlite3

import pytest

from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.persistence import (
    decode_warm_artifact,
    encode_warm_artifact,
)
from repro.retrieval.sharding import MemoryBudget, PartitionedSearchEngine
from repro.retrieval.store import (
    SCHEMA_VERSION,
    IndexStore,
    PostingPageCache,
    StoreBackedCollection,
    StoreBackedSearchEngine,
    StoreError,
    read_warm_payloads,
    write_store,
)

K = 20


@pytest.fixture(scope="module")
def built_engine(small_corpus):
    return PartitionedSearchEngine(small_corpus.collection, 3)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, built_engine):
    path = tmp_path_factory.mktemp("store") / "index.sqlite3"
    write_store(path, built_engine)
    return path


def assert_identical(expected, got, query):
    __tracebackhide__ = True
    assert [r.doc_id for r in got] == [r.doc_id for r in expected], query
    assert got.scores == expected.scores, query


class TestWriteAttachIdentity:
    def test_rankings_and_scores_identical(
        self, built_engine, store_path, topic_queries
    ):
        engine = StoreBackedSearchEngine(store_path)
        try:
            for query in topic_queries:
                assert_identical(
                    built_engine.search(query, K), engine.search(query, K), query
                )
        finally:
            engine.close()

    def test_empty_result_query(self, built_engine, store_path):
        engine = StoreBackedSearchEngine(store_path)
        try:
            query = "zzznonexistentterm"
            assert len(built_engine.search(query, K)) == 0
            assert len(engine.search(query, K)) == 0
        finally:
            engine.close()

    def test_global_statistics_round_trip(self, built_engine, store_path):
        store = IndexStore(store_path)
        try:
            assert store.num_partitions == built_engine.num_partitions
            assert store.num_documents == len(built_engine.collection)
            assert store.total_tokens == sum(
                index.total_tokens for index in built_engine.partitions
            )
        finally:
            store.close()

    def test_average_document_length_matches_exactly(
        self, built_engine, store_path
    ):
        engine = StoreBackedSearchEngine(store_path)
        try:
            # The DFR model's avg_dl must come out as the *same float*,
            # or scores drift — exact ints in, exact division out.
            assert (
                engine._average_document_length
                == built_engine._average_document_length
            )
        finally:
            engine.close()

    def test_snippet_vectors_identical(
        self, built_engine, store_path, topic_queries
    ):
        query = topic_queries[0]
        reference = built_engine.search(query, 5)
        engine = StoreBackedSearchEngine(store_path)
        try:
            results = engine.search(query, 5)
            got = engine.snippet_vectors(query, results)
            expected = built_engine.snippet_vectors(query, reference)
            assert {d: v.weights for d, v in got.items()} == {
                d: v.weights for d, v in expected.items()
            }
        finally:
            engine.close()

    def test_pickle_round_trip_re_attaches(self, store_path, topic_queries):
        engine = StoreBackedSearchEngine(store_path, memory_budget=10_000_000)
        try:
            expected = engine.search(topic_queries[0], K)
            clone = pickle.loads(pickle.dumps(engine))
            try:
                assert clone.memory_budget.limit_bytes == 10_000_000
                assert_identical(
                    expected, clone.search(topic_queries[0], K), topic_queries[0]
                )
            finally:
                clone.close()
        finally:
            engine.close()


class TestPageCache:
    def test_capacity_is_enforced(self, built_engine, store_path, topic_queries):
        engine = StoreBackedSearchEngine(store_path, page_cache_bytes=20_000)
        try:
            for query in topic_queries:
                assert_identical(
                    built_engine.search(query, K), engine.search(query, K), query
                )
                stats = engine.page_cache_info()
                # A single oversized page may be resident alone; otherwise
                # the cache never exceeds its capacity.
                assert (
                    stats.resident_bytes <= 20_000 or stats.pages == 1
                )
            assert engine.page_cache_info().evictions > 0
        finally:
            engine.close()

    def test_hits_on_repeated_query(self, store_path, topic_queries):
        engine = StoreBackedSearchEngine(store_path)
        try:
            engine.search(topic_queries[0], K)
            misses = engine.page_cache_info().misses
            engine.search(topic_queries[0], K)
            stats = engine.page_cache_info()
            assert stats.misses == misses
            assert stats.hits > 0
        finally:
            engine.close()

    def test_oversized_page_admitted_alone(self):
        cache = PostingPageCache(capacity_bytes=10)
        from repro.retrieval.index import PostingList

        page = PostingList()
        page.ordinals.extend(range(100))
        page.tfs.extend([1] * 100)
        cache.put((0, "big"), page, 5000)
        assert cache.get((0, "big")) is page
        assert cache.stats().pages == 1


class TestMemoryBudget:
    def test_resident_stays_under_budget_with_identical_results(
        self, built_engine, store_path, topic_queries
    ):
        limit = 5_000
        engine = StoreBackedSearchEngine(store_path, memory_budget=limit)
        try:
            for query in topic_queries:
                assert_identical(
                    built_engine.search(query, K), engine.search(query, K), query
                )
                resident = sum(p.resident_bytes() for p in engine.partitions)
                assert resident <= limit
            budget = engine.memory_budget
            assert budget.enforcements > 0
            assert budget.partitions_evicted > 0
            assert budget.bytes_evicted > 0
        finally:
            engine.close()

    def test_eviction_then_repage_identity(
        self, built_engine, store_path, topic_queries
    ):
        engine = StoreBackedSearchEngine(store_path)
        try:
            query = topic_queries[0]
            expected = built_engine.search(query, K)
            assert_identical(expected, engine.search(query, K), query)
            for partition in engine.partitions:
                partition.evict()
            assert sum(p.resident_bytes() for p in engine.partitions) == 0
            assert_identical(expected, engine.search(query, K), query)
        finally:
            engine.close()

    def test_in_memory_engine_rejects_budget(self, built_engine):
        with pytest.raises(ValueError, match="not evictable"):
            built_engine.set_memory_budget(1_000_000)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)


class TestSchemaValidation:
    def test_malformed_db_names_file(self, tmp_path):
        path = tmp_path / "garbage.sqlite3"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.raises(StoreError, match="garbage.sqlite3"):
            IndexStore(path)

    def test_plain_sqlite_without_meta_fails_fast(self, tmp_path):
        path = tmp_path / "other.sqlite3"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="other.sqlite3"):
            IndexStore(path)

    def test_older_schema_names_both_versions(self, tmp_path):
        path = tmp_path / "old.sqlite3"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute(
            "INSERT INTO meta VALUES ('schema_version', '0')"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError) as excinfo:
            IndexStore(path)
        message = str(excinfo.value)
        assert "old.sqlite3" in message
        assert "0" in message
        assert str(SCHEMA_VERSION) in message

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(StoreError):
            IndexStore(tmp_path / "missing.sqlite3")


class TestEmptyPartitions:
    def test_more_partitions_than_documents(self, tmp_path, tiny_collection):
        built = PartitionedSearchEngine(tiny_collection, 8)
        path = tmp_path / "sparse.sqlite3"
        write_store(path, built)
        engine = StoreBackedSearchEngine(path)
        try:
            assert engine.num_partitions == 8
            for query in ("apple computer", "banana fruit", "orchard"):
                assert_identical(
                    built.search(query, 5), engine.search(query, 5), query
                )
        finally:
            engine.close()


def _attach_and_search(store_path, query, k, out):
    engine = StoreBackedSearchEngine(store_path)
    try:
        out.put([(r.doc_id, r.score) for r in engine.search(query, k)])
    finally:
        engine.close()


class TestConcurrentAttach:
    def test_two_processes_attach_the_same_store(
        self, built_engine, store_path, topic_queries
    ):
        query = topic_queries[0]
        expected = [
            (r.doc_id, r.score) for r in built_engine.search(query, K)
        ]
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        workers = [
            ctx.Process(
                target=_attach_and_search, args=(store_path, query, K, out)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        results = [out.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
        assert results == [expected, expected]

    def test_parent_attach_survives_fork_use(self, store_path, topic_queries):
        # The parent's own attached engine must keep working after other
        # processes opened the same file (WAL read-only attach).
        engine = StoreBackedSearchEngine(store_path)
        try:
            first = engine.search(topic_queries[0], K)
            second = engine.search(topic_queries[0], K)
            assert [r.doc_id for r in first] == [r.doc_id for r in second]
        finally:
            engine.close()


class TestStoreBackedCollection:
    def test_surface_matches_original(self, small_corpus, store_path):
        store = IndexStore(store_path)
        collection = StoreBackedCollection(store)
        original = small_corpus.collection
        try:
            assert len(collection) == len(original)
            assert collection.doc_ids == original.doc_ids
            doc_id = original.doc_ids[0]
            assert doc_id in collection
            assert collection[doc_id].text == original[doc_id].text
            assert collection[doc_id].title == original[doc_id].title
            assert collection[doc_id].metadata == original[doc_id].metadata
            assert collection.get("not-a-doc") is None
            assert "not-a-doc" not in collection
            assert [d.doc_id for d in collection] == original.doc_ids
        finally:
            store.close()

    def test_missing_doc_raises_keyerror(self, store_path):
        store = IndexStore(store_path)
        try:
            with pytest.raises(KeyError):
                StoreBackedCollection(store)["nope"]
        finally:
            store.close()


class TestWarmArtifactsInStore:
    def test_payloads_round_trip_exactly(self, tmp_path, tiny_collection):
        built = PartitionedSearchEngine(tiny_collection, 2)
        results = built.search("apple computer", 3)
        vectors = built.snippet_vectors("apple computer", results)
        payload = encode_warm_artifact("apple computer", results, vectors)
        path = tmp_path / "warm.sqlite3"
        write_store(
            path,
            built,
            warm_payloads={0: {"apple computer": payload}, 1: {}},
        )
        assert read_warm_payloads(path, 0) == {"apple computer": payload}
        assert read_warm_payloads(path, 1) == {}
        spec_query, (loaded_results, loaded_vectors) = decode_warm_artifact(
            read_warm_payloads(path, 0)["apple computer"]
        )
        assert spec_query == "apple computer"
        assert [r.doc_id for r in loaded_results] == [
            r.doc_id for r in results
        ]
        assert loaded_results.scores == results.scores
        assert {d: v.weights for d, v in loaded_vectors.items()} == {
            d: v.weights for d, v in vectors.items()
        }

    def test_store_without_warm_rows_reads_empty(self, store_path):
        store = IndexStore(store_path)
        try:
            assert store.warm_shards() == []
            assert store.warm_payloads(0) == {}
        finally:
            store.close()

"""Tests for ResultList and the SearchEngine facade."""

from __future__ import annotations

import pytest

from repro.retrieval.engine import ResultList, SearchEngine
from repro.retrieval.models import BM25


class TestResultList:
    def test_ranks_are_one_based(self):
        rl = ResultList("q", [("a", 2.0), ("b", 1.0)])
        assert rl[0].rank == 1
        assert rl.rank_of("b") == 2

    def test_duplicate_doc_ids_rejected(self):
        with pytest.raises(ValueError):
            ResultList("q", [("a", 1.0), ("a", 0.5)])

    def test_contains_and_score_of(self):
        rl = ResultList("q", [("a", 2.0)])
        assert "a" in rl and "b" not in rl
        assert rl.score_of("a") == 2.0
        assert rl.score_of("b", default=-1.0) == -1.0

    def test_truncate(self):
        rl = ResultList("q", [("a", 3.0), ("b", 2.0), ("c", 1.0)])
        top = rl.truncate(2)
        assert top.doc_ids == ["a", "b"]
        assert top.rank_of("b") == 2

    def test_iteration_and_len(self):
        rl = ResultList("q", [("a", 1.0), ("b", 0.5)])
        assert len(rl) == 2
        assert [r.doc_id for r in rl] == ["a", "b"]

    def test_unknown_rank_raises(self):
        with pytest.raises(KeyError):
            ResultList("q", []).rank_of("a")


class TestSearchEngine:
    @pytest.fixture()
    def engine(self, tiny_collection):
        return SearchEngine(tiny_collection)

    def test_topical_ranking(self, engine):
        results = engine.search("apple orchard")
        assert results.doc_ids[0] == "apple-fruit"

    def test_multi_term_beats_single_term(self, engine):
        results = engine.search("apple computer")
        assert results.doc_ids[0] in ("apple-pc", "apple-both")

    def test_k_limits_results(self, engine):
        assert len(engine.search("apple", k=2)) == 2

    def test_unmatched_query_empty(self, engine):
        assert len(engine.search("xylophone")) == 0

    def test_stopword_only_query_empty(self, engine):
        assert len(engine.search("the of and")) == 0

    def test_invalid_k(self, engine):
        with pytest.raises(ValueError):
            engine.search("apple", k=0)

    def test_scores_descending(self, engine):
        scores = engine.search("apple fruit").scores
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self, engine):
        a = engine.search("apple").doc_ids
        b = engine.search("apple").doc_ids
        assert a == b

    def test_model_swap_changes_scores(self, tiny_collection):
        dph = SearchEngine(tiny_collection)
        bm25 = SearchEngine(tiny_collection, model=BM25())
        q = "apple fruit"
        assert dph.search(q).scores != bm25.search(q).scores

    def test_snippet_for_result(self, engine):
        snippet = engine.snippet("apple orchard", "apple-fruit")
        assert snippet.doc_id == "apple-fruit"
        assert snippet.text

    def test_snippet_vectors_cover_all_results(self, engine):
        results = engine.search("apple")
        vectors = engine.snippet_vectors("apple", results)
        assert set(vectors) == set(results.doc_ids)

    def test_search_on_fixture_corpus(self, small_engine, small_corpus):
        topic = small_corpus.topics[0]
        results = small_engine.search(topic.query, k=30)
        assert len(results) > 0
        # Top results for a topic query are documents of that topic.
        top_labels = [
            small_corpus.labels.get(d, (None, None))[0]
            for d in results.doc_ids[:5]
        ]
        assert top_labels.count(topic.topic_id) >= 3


class TestBatchAPIs:
    @pytest.fixture()
    def engine(self, tiny_collection):
        return SearchEngine(tiny_collection)

    def test_search_batch_deduplicates(self, engine):
        batch = engine.search_batch(["apple", "banana", "apple"], k=3)
        assert set(batch) == {"apple", "banana"}
        assert batch["apple"].doc_ids == engine.search("apple", 3).doc_ids

    def test_search_batch_empty(self, engine):
        assert engine.search_batch([], k=3) == {}

    def test_snippet_vector_cache_reuses_vectors(self, tiny_collection):
        engine = SearchEngine(tiny_collection, vector_cache_size=64)
        results = engine.search("apple")
        first = engine.snippet_vectors("apple", results)
        second = engine.snippet_vectors("apple", results)
        for doc_id, vector in first.items():
            assert second[doc_id] is vector

    def test_uncached_engine_rebuilds_vectors(self, tiny_collection):
        engine = SearchEngine(tiny_collection)
        results = engine.search("apple")
        first = engine.snippet_vectors("apple", results)
        second = engine.snippet_vectors("apple", results)
        assert all(first[d] is not second[d] for d in first)

    def test_snippet_vectors_batch(self, tiny_collection):
        engine = SearchEngine(tiny_collection, vector_cache_size=64)
        batch = engine.search_batch(["apple", "fruit"], k=4)
        vectors = engine.snippet_vectors_batch(batch)
        assert set(vectors) == {"apple", "fruit"}
        for query, results in batch.items():
            assert set(vectors[query]) == set(results.doc_ids)
            assert vectors[query] == engine.snippet_vectors(query, results)

"""Tests for Document and DocumentCollection."""

from __future__ import annotations

import pytest

from repro.retrieval.documents import Document, DocumentCollection


class TestDocument:
    def test_requires_doc_id(self):
        with pytest.raises(ValueError):
            Document(doc_id="", text="x")

    def test_full_text_includes_title(self):
        doc = Document("d1", "body text", title="A Title")
        assert doc.full_text == "A Title\nbody text"

    def test_full_text_without_title(self):
        assert Document("d1", "body").full_text == "body"

    def test_len_is_text_length(self):
        assert len(Document("d1", "abcd")) == 4

    def test_metadata_defaults_empty_and_not_compared(self):
        a = Document("d1", "x", metadata={"k": 1})
        b = Document("d1", "x", metadata={"k": 2})
        assert a == b

    def test_frozen(self):
        doc = Document("d1", "x")
        with pytest.raises(AttributeError):
            doc.text = "y"


class TestDocumentCollection:
    def test_add_and_get(self):
        coll = DocumentCollection()
        coll.add(Document("d1", "alpha"))
        assert coll["d1"].text == "alpha"

    def test_constructor_accepts_iterable(self):
        coll = DocumentCollection([Document("a", "x"), Document("b", "y")])
        assert len(coll) == 2

    def test_duplicate_doc_id_rejected(self):
        coll = DocumentCollection([Document("d1", "x")])
        with pytest.raises(ValueError, match="duplicate"):
            coll.add(Document("d1", "y"))

    def test_ordinals_follow_insertion_order(self):
        coll = DocumentCollection([Document("a", "x"), Document("b", "y")])
        assert coll.ordinal("a") == 0
        assert coll.ordinal("b") == 1
        assert coll.by_ordinal(1).doc_id == "b"

    def test_contains(self):
        coll = DocumentCollection([Document("a", "x")])
        assert "a" in coll
        assert "z" not in coll

    def test_get_with_default(self):
        coll = DocumentCollection()
        assert coll.get("nope") is None
        sentinel = Document("s", "x")
        assert coll.get("nope", sentinel) is sentinel

    def test_iteration_preserves_order(self):
        docs = [Document(f"d{i}", "x") for i in range(5)]
        coll = DocumentCollection(docs)
        assert [d.doc_id for d in coll] == [f"d{i}" for i in range(5)]

    def test_doc_ids_property(self):
        coll = DocumentCollection([Document("a", "x"), Document("b", "y")])
        assert coll.doc_ids == ["a", "b"]

    def test_extend(self):
        coll = DocumentCollection()
        coll.extend([Document("a", "x"), Document("b", "y")])
        assert len(coll) == 2

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError):
            DocumentCollection()["missing"]

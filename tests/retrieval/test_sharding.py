"""Tests for index partitioning: the hash router, collection
partitioning, the ranking-identity of the partitioned engine, and the
build accounting (`BuildReport`, memory estimates, pre-built partition
injection) behind the partition-parallel offline pipeline."""

from __future__ import annotations

import pytest

from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import SearchEngine
from repro.retrieval.index import InvertedIndex
from repro.retrieval.sharding import (
    BuildReport,
    PartitionedSearchEngine,
    partition_collection,
    stable_shard,
)


class TestStableShard:
    def test_deterministic(self):
        for key in ("apple", "apple store", "jaguar", ""):
            assert stable_shard(key, 4) == stable_shard(key, 4)

    def test_in_range(self):
        for i in range(200):
            assert 0 <= stable_shard(f"q{i}", 7) < 7

    def test_single_shard_is_zero(self):
        assert stable_shard("anything", 1) == 0

    def test_seed_changes_mapping(self):
        keys = [f"q{i}" for i in range(64)]
        base = [stable_shard(k, 8) for k in keys]
        reseeded = [stable_shard(k, 8, seed=1) for k in keys]
        assert base != reseeded

    def test_roughly_uniform(self):
        counts = [0] * 4
        n = 2000
        for i in range(n):
            counts[stable_shard(f"query-{i}", 4)] += 1
        # Binomial(2000, 1/4): ±5 sigma is ~±97; demand a loose band.
        for c in counts:
            assert 350 < c < 650

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            stable_shard("q", 0)


class TestPartitionCollection:
    def test_exactly_once_and_order_preserved(self, small_corpus):
        collection = small_corpus.collection
        parts = partition_collection(collection, 3)
        assert len(parts) == 3
        seen = [d.doc_id for p in parts for d in p]
        assert sorted(seen) == sorted(collection.doc_ids)
        assert len(seen) == len(collection)
        for part in parts:
            ordinals = [collection.ordinal(d.doc_id) for d in part]
            assert ordinals == sorted(ordinals)

    def test_placement_matches_router(self, small_corpus):
        collection = small_corpus.collection
        parts = partition_collection(collection, 4, seed=5)
        for shard, part in enumerate(parts):
            for document in part:
                assert stable_shard(document.doc_id, 4, seed=5) == shard

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_collection(DocumentCollection(), 0)


@pytest.fixture(scope="module")
def partitioned_engine(small_corpus):
    return PartitionedSearchEngine(small_corpus.collection, num_partitions=3)


class TestPartitionedSearchEngine:
    def test_rankings_identical_to_single_engine(
        self, small_corpus, small_engine, partitioned_engine
    ):
        """The load-bearing guarantee: document partitioning with global
        statistics must not change one score or one rank."""
        for topic in small_corpus.topics:
            single = small_engine.search(topic.query, 50)
            sharded = partitioned_engine.search(topic.query, 50)
            assert single.doc_ids == sharded.doc_ids
            assert single.scores == sharded.scores

    @pytest.mark.parametrize("num_partitions", [1, 2, 5])
    def test_identity_across_partition_counts(
        self, small_corpus, small_engine, num_partitions
    ):
        engine = PartitionedSearchEngine(
            small_corpus.collection, num_partitions=num_partitions
        )
        query = small_corpus.topics[0].query
        single = small_engine.search(query, 30)
        assert engine.search(query, 30).doc_ids == single.doc_ids

    def test_empty_query(self, partitioned_engine):
        assert len(partitioned_engine.search("", 10)) == 0

    def test_k_validation(self, partitioned_engine):
        with pytest.raises(ValueError):
            partitioned_engine.search("apple", 0)

    def test_search_batch_dedupes(self, small_corpus, partitioned_engine):
        query = small_corpus.topics[0].query
        out = partitioned_engine.search_batch([query, query], 10)
        assert set(out) == {query}

    def test_snippets_inherited(self, small_corpus, partitioned_engine):
        query = small_corpus.topics[0].query
        results = partitioned_engine.search(query, 5)
        vectors = partitioned_engine.snippet_vectors(query, results)
        assert set(vectors) == set(results.doc_ids)

    def test_every_document_in_exactly_one_partition(self, partitioned_engine):
        total = sum(p.num_documents for p in partitioned_engine.partitions)
        assert total == len(partitioned_engine.collection)

    def test_invalid_partition_count(self, small_corpus):
        with pytest.raises(ValueError):
            PartitionedSearchEngine(small_corpus.collection, num_partitions=0)


class TestDegeneratePartitioning:
    """num_shards > len(collection): empty partitions must stay
    well-formed and collection-global statistics must still match the
    single-engine reference — the index-level analogue of the
    zero-query-shard stats guarantee of the serving layer."""

    def test_partition_collection_more_shards_than_documents(
        self, tiny_collection
    ):
        num_shards = len(tiny_collection) + 3
        parts = partition_collection(tiny_collection, num_shards)
        assert len(parts) == num_shards
        assert sum(len(p) for p in parts) == len(tiny_collection)
        assert any(len(p) == 0 for p in parts)
        for part in parts:
            # Empty partitions are real, iterable, indexable collections.
            assert list(part) == [part[d] for d in part.doc_ids]

    def test_engine_identity_with_more_partitions_than_documents(
        self, tiny_collection
    ):
        single = SearchEngine(tiny_collection)
        engine = PartitionedSearchEngine(
            tiny_collection, num_partitions=len(tiny_collection) + 4
        )
        for query in ("apple", "apple fruit", "banana tropical", "computer"):
            want = single.search(query, 10)
            got = engine.search(query, 10)
            assert want.doc_ids == got.doc_ids
            assert want.scores == got.scores

    def test_global_statistics_match_single_index(self, tiny_collection):
        single = SearchEngine(tiny_collection)
        engine = PartitionedSearchEngine(
            tiny_collection, num_partitions=len(tiny_collection) + 4
        )
        assert engine._num_documents == single.index.num_documents
        assert engine._average_document_length == pytest.approx(
            single.index.average_document_length
        )
        total_tokens = sum(p.total_tokens for p in engine.partitions)
        assert total_tokens == single.index.total_tokens

    def test_empty_partition_indexes_are_wellformed(self, tiny_collection):
        engine = PartitionedSearchEngine(
            tiny_collection, num_partitions=len(tiny_collection) + 4
        )
        empties = [p for p in engine.partitions if p.num_documents == 0]
        assert empties
        for index in empties:
            assert index.num_terms == 0
            assert index.total_tokens == 0
            assert index.average_document_length == 0.0
            assert index.memory_estimate()["postings_bytes"] == 0

    def test_empty_collection_searches_empty(self):
        engine = PartitionedSearchEngine(DocumentCollection(), num_partitions=3)
        assert len(engine.search("anything", 5)) == 0

    def test_degenerate_build_reports_merge_wellformed(self, tiny_collection):
        engine = PartitionedSearchEngine(
            tiny_collection, num_partitions=len(tiny_collection) + 4
        )
        reports = engine.build_reports()
        merged = BuildReport.merge(reports)
        assert merged.documents == len(tiny_collection)
        assert len(merged.shards) == engine.num_partitions
        for report in merged.shards:
            if report.documents == 0:
                assert report.terms == report.postings == report.tokens == 0
                assert report.postings_bytes == 0
                assert report.summary().startswith(f"[{report.name}]")


class TestPrebuiltPartitionIndexes:
    """The injection path the partition-parallel build assembles through."""

    def _parts_and_indexes(self, collection, num_partitions, analyzer):
        parts = partition_collection(collection, num_partitions)
        indexes = [
            InvertedIndex.from_collection(part, analyzer) for part in parts
        ]
        return parts, indexes

    def test_assembled_engine_identical_to_serial(self, small_corpus):
        collection = small_corpus.collection
        serial = PartitionedSearchEngine(collection, num_partitions=3)
        parts, indexes = self._parts_and_indexes(
            collection, 3, serial.analyzer
        )
        assembled = PartitionedSearchEngine(
            collection,
            3,
            analyzer=serial.analyzer,
            partition_collections=parts,
            partition_indexes=indexes,
        )
        for topic in small_corpus.topics:
            want = serial.search(topic.query, 30)
            got = assembled.search(topic.query, 30)
            assert want.doc_ids == got.doc_ids
            assert want.scores == got.scores

    def test_partition_count_mismatch_rejected(self, tiny_collection):
        parts, indexes = self._parts_and_indexes(tiny_collection, 2, None)
        with pytest.raises(ValueError, match="partition collections"):
            PartitionedSearchEngine(
                tiny_collection, 3, partition_collections=parts,
                partition_indexes=indexes,
            )
        with pytest.raises(ValueError, match="partition indexes"):
            PartitionedSearchEngine(
                tiny_collection, 2,
                partition_collections=parts,
                partition_indexes=indexes[:1],
            )

    def test_partitions_not_covering_collection_rejected(
        self, tiny_collection
    ):
        """A subset injection must fail loudly: global statistics are
        summed from the partitions, so a partial cover would silently
        rank over a partial corpus."""
        parts = partition_collection(tiny_collection, 2)
        victim = max(range(2), key=lambda i: len(parts[i]))
        partial = DocumentCollection(list(parts[victim])[:-1])
        parts[victim] = partial
        indexes = [
            InvertedIndex.from_collection(part, None) for part in parts
        ]
        with pytest.raises(ValueError, match="cover the collection"):
            PartitionedSearchEngine(
                tiny_collection, 2,
                partition_collections=parts,
                partition_indexes=indexes,
            )

    def test_mismatched_index_contents_rejected(self, tiny_collection):
        parts = partition_collection(tiny_collection, 2)
        # Swap the two indexes: documents no longer match their partition.
        indexes = [
            InvertedIndex.from_collection(part, None) for part in parts
        ]
        if not all(len(p) for p in parts):
            pytest.skip("hash split left a partition empty")
        with pytest.raises(ValueError, match="does not match"):
            PartitionedSearchEngine(
                tiny_collection, 2,
                partition_collections=parts,
                partition_indexes=list(reversed(indexes)),
            )


class TestBuildReport:
    def test_from_index_counts(self, tiny_collection):
        index = InvertedIndex.from_collection(tiny_collection)
        report = BuildReport.from_index(index, 0.5, name="partition0")
        assert report.documents == len(tiny_collection)
        assert report.terms == index.num_terms
        assert report.postings == index.num_postings
        assert report.tokens == index.total_tokens
        assert report.seconds == 0.5
        memory = index.memory_estimate()
        assert report.postings_bytes == memory["postings_bytes"]
        assert report.vocabulary_bytes == memory["vocabulary_bytes"]
        assert report.total_bytes == memory["total_bytes"]

    def test_merge_sums_and_keeps_shards(self, tiny_collection):
        parts = partition_collection(tiny_collection, 3)
        reports = [
            BuildReport.from_index(
                InvertedIndex.from_collection(part), 0.25, name=f"partition{i}"
            )
            for i, part in enumerate(parts)
        ]
        merged = BuildReport.merge(reports)
        assert merged.documents == len(tiny_collection)
        assert merged.postings == sum(r.postings for r in reports)
        assert merged.seconds == pytest.approx(0.75)
        assert merged.busy_seconds == pytest.approx(0.75)
        assert merged.total_bytes == sum(r.total_bytes for r in reports)
        assert merged.shards == tuple(reports)
        assert merged.name == "total"

    def test_merge_empty_input(self):
        merged = BuildReport.merge([])
        assert merged.documents == 0
        assert merged.total_bytes == 0
        assert merged.shards == ()
        assert merged.summary()  # renders without dividing by anything

    def test_summary_labels_wall_and_busy(self):
        leaf = BuildReport(10, 5, 20, 40, 0.5, name="partition0")
        assert "busy=" not in leaf.summary()
        import dataclasses

        merged = dataclasses.replace(
            BuildReport.merge([leaf, leaf]), seconds=0.6
        )
        text = merged.summary()
        assert "seconds=0.600" in text
        assert "busy=1.000" in text

    def test_memory_estimate_components_sum(self, tiny_collection):
        index = InvertedIndex.from_collection(tiny_collection)
        memory = index.memory_estimate()
        assert memory["total_bytes"] == (
            memory["postings_bytes"]
            + memory["vocabulary_bytes"]
            + memory["documents_bytes"]
        )
        assert memory["postings_bytes"] > 0
        assert memory["vocabulary_bytes"] > 0

    def test_partitioned_engine_memory_sums_partitions(self, small_corpus):
        engine = PartitionedSearchEngine(
            small_corpus.collection, num_partitions=3
        )
        totals = engine.memory_estimate()
        by_hand = {
            key: sum(p.memory_estimate()[key] for p in engine.partitions)
            for key in totals
        }
        assert totals == by_hand

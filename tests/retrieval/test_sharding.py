"""Tests for index partitioning: the hash router, collection
partitioning, and the ranking-identity of the partitioned engine."""

from __future__ import annotations

import pytest

from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import SearchEngine
from repro.retrieval.sharding import (
    PartitionedSearchEngine,
    partition_collection,
    stable_shard,
)


class TestStableShard:
    def test_deterministic(self):
        for key in ("apple", "apple store", "jaguar", ""):
            assert stable_shard(key, 4) == stable_shard(key, 4)

    def test_in_range(self):
        for i in range(200):
            assert 0 <= stable_shard(f"q{i}", 7) < 7

    def test_single_shard_is_zero(self):
        assert stable_shard("anything", 1) == 0

    def test_seed_changes_mapping(self):
        keys = [f"q{i}" for i in range(64)]
        base = [stable_shard(k, 8) for k in keys]
        reseeded = [stable_shard(k, 8, seed=1) for k in keys]
        assert base != reseeded

    def test_roughly_uniform(self):
        counts = [0] * 4
        n = 2000
        for i in range(n):
            counts[stable_shard(f"query-{i}", 4)] += 1
        # Binomial(2000, 1/4): ±5 sigma is ~±97; demand a loose band.
        for c in counts:
            assert 350 < c < 650

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            stable_shard("q", 0)


class TestPartitionCollection:
    def test_exactly_once_and_order_preserved(self, small_corpus):
        collection = small_corpus.collection
        parts = partition_collection(collection, 3)
        assert len(parts) == 3
        seen = [d.doc_id for p in parts for d in p]
        assert sorted(seen) == sorted(collection.doc_ids)
        assert len(seen) == len(collection)
        for part in parts:
            ordinals = [collection.ordinal(d.doc_id) for d in part]
            assert ordinals == sorted(ordinals)

    def test_placement_matches_router(self, small_corpus):
        collection = small_corpus.collection
        parts = partition_collection(collection, 4, seed=5)
        for shard, part in enumerate(parts):
            for document in part:
                assert stable_shard(document.doc_id, 4, seed=5) == shard

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_collection(DocumentCollection(), 0)


@pytest.fixture(scope="module")
def partitioned_engine(small_corpus):
    return PartitionedSearchEngine(small_corpus.collection, num_partitions=3)


class TestPartitionedSearchEngine:
    def test_rankings_identical_to_single_engine(
        self, small_corpus, small_engine, partitioned_engine
    ):
        """The load-bearing guarantee: document partitioning with global
        statistics must not change one score or one rank."""
        for topic in small_corpus.topics:
            single = small_engine.search(topic.query, 50)
            sharded = partitioned_engine.search(topic.query, 50)
            assert single.doc_ids == sharded.doc_ids
            assert single.scores == sharded.scores

    @pytest.mark.parametrize("num_partitions", [1, 2, 5])
    def test_identity_across_partition_counts(
        self, small_corpus, small_engine, num_partitions
    ):
        engine = PartitionedSearchEngine(
            small_corpus.collection, num_partitions=num_partitions
        )
        query = small_corpus.topics[0].query
        single = small_engine.search(query, 30)
        assert engine.search(query, 30).doc_ids == single.doc_ids

    def test_empty_query(self, partitioned_engine):
        assert len(partitioned_engine.search("", 10)) == 0

    def test_k_validation(self, partitioned_engine):
        with pytest.raises(ValueError):
            partitioned_engine.search("apple", 0)

    def test_search_batch_dedupes(self, small_corpus, partitioned_engine):
        query = small_corpus.topics[0].query
        out = partitioned_engine.search_batch([query, query], 10)
        assert set(out) == {query}

    def test_snippets_inherited(self, small_corpus, partitioned_engine):
        query = small_corpus.topics[0].query
        results = partitioned_engine.search(query, 5)
        vectors = partitioned_engine.snippet_vectors(query, results)
        assert set(vectors) == set(results.doc_ids)

    def test_every_document_in_exactly_one_partition(self, partitioned_engine):
        total = sum(p.num_documents for p in partitioned_engine.partitions)
        assert total == len(partitioned_engine.collection)

    def test_invalid_partition_count(self, small_corpus):
        with pytest.raises(ValueError):
            PartitionedSearchEngine(small_corpus.collection, num_partitions=0)

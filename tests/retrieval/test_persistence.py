"""Tests for JSON-lines persistence of collections and query logs."""

from __future__ import annotations

import pytest

from repro.querylog.records import QueryLog, QueryRecord
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.persistence import (
    dump_collection,
    dump_query_log,
    load_collection,
    load_query_log,
)


class TestCollectionRoundTrip:
    def test_documents_preserved(self, tmp_path, tiny_collection):
        path = tmp_path / "docs.jsonl"
        dump_collection(tiny_collection, path)
        loaded = load_collection(path)
        assert loaded.doc_ids == tiny_collection.doc_ids
        for doc_id in loaded.doc_ids:
            assert loaded[doc_id].text == tiny_collection[doc_id].text
            assert loaded[doc_id].title == tiny_collection[doc_id].title

    def test_metadata_preserved(self, tmp_path):
        coll = DocumentCollection(
            [Document("d1", "x", metadata={"topic_id": 3, "aspect": 1})]
        )
        path = tmp_path / "docs.jsonl"
        dump_collection(coll, path)
        assert load_collection(path)["d1"].metadata == {
            "topic_id": 3,
            "aspect": 1,
        }

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        dump_collection(DocumentCollection(), path)
        assert len(load_collection(path)) == 0

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"doc_id": "a", "text": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_collection(path)

    def test_loaded_collection_is_searchable(self, tmp_path, tiny_collection):
        from repro.retrieval.engine import SearchEngine

        path = tmp_path / "docs.jsonl"
        dump_collection(tiny_collection, path)
        engine = SearchEngine(load_collection(path))
        assert engine.search("apple orchard").doc_ids[0] == "apple-fruit"


class TestQueryLogRoundTrip:
    @pytest.fixture()
    def log(self):
        return QueryLog(
            [
                QueryRecord(
                    10.5, "u1", "apple", results=("d1", "d2"), clicks=("d1",)
                ),
                QueryRecord(20.0, "u2", "banana bread"),
            ],
            name="roundtrip",
        )

    def test_records_preserved(self, tmp_path, log):
        path = tmp_path / "log.jsonl"
        dump_query_log(log, path)
        loaded = load_query_log(path, name="roundtrip")
        assert len(loaded) == len(log)
        for a, b in zip(log, loaded):
            assert (a.timestamp, a.user_id, a.query) == (
                b.timestamp,
                b.user_id,
                b.query,
            )
            assert a.results == b.results
            assert a.clicks == b.clicks

    def test_loaded_log_feeds_the_miner(self, tmp_path, small_log):
        from repro.querylog.specializations import SpecializationMiner

        path = tmp_path / "log.jsonl"
        dump_query_log(small_log, path)
        loaded = load_query_log(path, name=small_log.name)
        miner = SpecializationMiner(loaded).build()
        assert miner.recommender.is_trained

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(ValueError, match=":1:"):
            load_query_log(path)


class TestWarmArtifactRoundTrip:
    """Warm artifacts (spec result lists + snippet vectors) must survive
    the disk round-trip bit-exactly: a hydrated framework has to serve
    the *identical* rankings the warming framework served."""

    @pytest.fixture()
    def warmed(self, framework_factory, topic_queries):
        from repro.serving.service import DiversificationService

        service = DiversificationService(framework_factory())
        service.warm(topic_queries)
        return service

    def test_dump_load_is_exact(self, tmp_path, warmed):
        from repro.retrieval.persistence import (
            dump_warm_artifacts,
            load_warm_artifacts,
        )

        artifacts = warmed.framework.export_warm_state()
        path = tmp_path / "warm.jsonl"
        assert dump_warm_artifacts(artifacts, path) == len(artifacts)
        loaded = load_warm_artifacts(path)
        assert set(loaded) == set(artifacts)
        for spec_query, (results, vectors) in artifacts.items():
            got_results, got_vectors = loaded[spec_query]
            assert got_results.doc_ids == results.doc_ids
            assert got_results.scores == results.scores  # floats exact
            assert set(got_vectors) == set(vectors)
            for doc_id, vector in vectors.items():
                assert got_vectors[doc_id].weights == vector.weights
                assert got_vectors[doc_id].norm == vector.norm

    def test_hydrated_service_serves_identical_rankings(
        self, tmp_path, warmed, framework_factory, topic_queries
    ):
        from repro.serving.service import DiversificationService

        want = [r.ranking for r in warmed.diversify_batch(topic_queries)]
        path = tmp_path / "warm.jsonl"
        saved = warmed.save_warm(path)
        fresh = DiversificationService(framework_factory())
        assert fresh.load_warm(path) == saved
        got = [r.ranking for r in fresh.diversify_batch(topic_queries)]
        assert got == want
        # The offline phase never re-derived: every artifact was a hit.
        assert fresh.framework.cache_info().misses == 0
        # Re-warming fetches nothing either.
        assert fresh.warm(topic_queries).fetched == 0

    def test_install_skips_present_entries(self, tmp_path, warmed):
        artifacts = warmed.framework.export_warm_state()
        assert warmed.framework.install_warm_state(artifacts) == 0

    def test_empty_artifacts(self, tmp_path):
        from repro.retrieval.persistence import (
            dump_warm_artifacts,
            load_warm_artifacts,
        )

        path = tmp_path / "warm.jsonl"
        assert dump_warm_artifacts({}, path) == 0
        assert load_warm_artifacts(path) == {}

    def test_invalid_json_reports_line(self, tmp_path):
        from repro.retrieval.persistence import load_warm_artifacts

        path = tmp_path / "bad.jsonl"
        path.write_text('{"q": "ok", "results": [], "vectors": {}}\nnope\n')
        with pytest.raises(ValueError, match=":2:"):
            load_warm_artifacts(path)

    def test_malformed_artifact_reports_line(self, tmp_path):
        """Valid JSON that is not a warm artifact (missing key, wrong
        shape) must still point at the offending line, not surface a
        bare KeyError/TypeError."""
        from repro.retrieval.persistence import load_warm_artifacts

        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"q": "ok", "results": [], "vectors": {}}\n'
            '{"results": [], "vectors": {}}\n'  # no "q"
        )
        with pytest.raises(ValueError, match=":2:.*malformed"):
            load_warm_artifacts(path)
        path.write_text('{"q": "ok", "results": [["d1"]], "vectors": {}}\n')
        with pytest.raises(ValueError, match=":1:.*malformed"):
            load_warm_artifacts(path)


class TestAtomicWrites:
    """Dumpers must never leave a half-written artifact: writes go to a
    temp file that only replaces the target on success, so a crash
    mid-dump leaves the previous version intact and no temp litter."""

    def test_partial_write_preserves_original(self, tmp_path, tiny_collection):
        path = tmp_path / "docs.jsonl"
        dump_collection(tiny_collection, path)
        original = path.read_text()

        class Boom(RuntimeError):
            pass

        def exploding_docs():
            yield Document("ok-doc", "written before the crash")
            raise Boom("disk full, say")

        with pytest.raises(Boom):
            dump_collection(exploding_docs(), path)
        # The crashed dump replaced nothing and cleaned up after itself.
        assert path.read_text() == original
        assert [p.name for p in tmp_path.iterdir()] == ["docs.jsonl"]
        assert load_collection(path).doc_ids == tiny_collection.doc_ids

    def test_failed_first_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.jsonl"

        def exploding():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            dump_collection(exploding(), path)
        assert list(tmp_path.iterdir()) == []

    def test_warm_artifact_encode_decode_is_the_jsonl_line(
        self, tmp_path, framework_factory, topic_queries
    ):
        """encode/decode_warm_artifact are the single source of truth:
        the JSONL file's lines are exactly the encoded payloads (the
        same strings the SQLite store's warm_artifacts rows hold)."""
        from repro.retrieval.persistence import (
            decode_warm_artifact,
            dump_warm_artifacts,
            encode_warm_artifact,
        )
        from repro.serving.service import DiversificationService

        service = DiversificationService(framework_factory())
        service.warm(topic_queries)
        artifacts = service.framework.export_warm_state()
        if not artifacts:
            pytest.skip("no ambiguous queries in the small fixture log")
        path = tmp_path / "warm.jsonl"
        dump_warm_artifacts(artifacts, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert sorted(lines) == sorted(
            encode_warm_artifact(q, results, vectors)
            for q, (results, vectors) in artifacts.items()
        )
        for line in lines:
            spec_query, (results, vectors) = decode_warm_artifact(line)
            want_results, want_vectors = artifacts[spec_query]
            assert results.doc_ids == want_results.doc_ids
            assert results.scores == want_results.scores
            assert {d: v.weights for d, v in vectors.items()} == {
                d: v.weights for d, v in want_vectors.items()
            }

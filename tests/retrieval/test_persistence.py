"""Tests for JSON-lines persistence of collections and query logs."""

from __future__ import annotations

import pytest

from repro.querylog.records import QueryLog, QueryRecord
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.persistence import (
    dump_collection,
    dump_query_log,
    load_collection,
    load_query_log,
)


class TestCollectionRoundTrip:
    def test_documents_preserved(self, tmp_path, tiny_collection):
        path = tmp_path / "docs.jsonl"
        dump_collection(tiny_collection, path)
        loaded = load_collection(path)
        assert loaded.doc_ids == tiny_collection.doc_ids
        for doc_id in loaded.doc_ids:
            assert loaded[doc_id].text == tiny_collection[doc_id].text
            assert loaded[doc_id].title == tiny_collection[doc_id].title

    def test_metadata_preserved(self, tmp_path):
        coll = DocumentCollection(
            [Document("d1", "x", metadata={"topic_id": 3, "aspect": 1})]
        )
        path = tmp_path / "docs.jsonl"
        dump_collection(coll, path)
        assert load_collection(path)["d1"].metadata == {
            "topic_id": 3,
            "aspect": 1,
        }

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        dump_collection(DocumentCollection(), path)
        assert len(load_collection(path)) == 0

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"doc_id": "a", "text": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_collection(path)

    def test_loaded_collection_is_searchable(self, tmp_path, tiny_collection):
        from repro.retrieval.engine import SearchEngine

        path = tmp_path / "docs.jsonl"
        dump_collection(tiny_collection, path)
        engine = SearchEngine(load_collection(path))
        assert engine.search("apple orchard").doc_ids[0] == "apple-fruit"


class TestQueryLogRoundTrip:
    @pytest.fixture()
    def log(self):
        return QueryLog(
            [
                QueryRecord(
                    10.5, "u1", "apple", results=("d1", "d2"), clicks=("d1",)
                ),
                QueryRecord(20.0, "u2", "banana bread"),
            ],
            name="roundtrip",
        )

    def test_records_preserved(self, tmp_path, log):
        path = tmp_path / "log.jsonl"
        dump_query_log(log, path)
        loaded = load_query_log(path, name="roundtrip")
        assert len(loaded) == len(log)
        for a, b in zip(log, loaded):
            assert (a.timestamp, a.user_id, a.query) == (
                b.timestamp,
                b.user_id,
                b.query,
            )
            assert a.results == b.results
            assert a.clicks == b.clicks

    def test_loaded_log_feeds_the_miner(self, tmp_path, small_log):
        from repro.querylog.specializations import SpecializationMiner

        path = tmp_path / "log.jsonl"
        dump_query_log(small_log, path)
        loaded = load_query_log(path, name=small_log.name)
        miner = SpecializationMiner(loaded).build()
        assert miner.recommender.is_trained

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(ValueError, match=":1:"):
            load_query_log(path)

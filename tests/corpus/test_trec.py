"""Tests for the TREC diversity testbed model and file formats."""

from __future__ import annotations

import pytest

from repro.corpus.trec import (
    DiversityQrels,
    DiversityTestbed,
    DiversityTopic,
    Subtopic,
    build_testbed,
    format_diversity_qrels,
    format_run,
    parse_diversity_qrels,
    parse_run,
    parse_topics_xml,
)


class TestDataTypes:
    def test_subtopic_numbers_one_based(self):
        with pytest.raises(ValueError):
            Subtopic(number=0)

    def test_topic_subtopic_count(self):
        topic = DiversityTopic(1, "q", (Subtopic(1), Subtopic(2)))
        assert topic.num_subtopics == 2


class TestDiversityQrels:
    @pytest.fixture()
    def qrels(self):
        q = DiversityQrels()
        q.add(1, 1, "d1")
        q.add(1, 1, "d2")
        q.add(1, 2, "d2")
        q.add(2, 1, "d9")
        return q

    def test_is_relevant(self, qrels):
        assert qrels.is_relevant(1, 1, "d1")
        assert not qrels.is_relevant(1, 2, "d1")
        assert not qrels.is_relevant(3, 1, "d1")

    def test_is_relevant_any(self, qrels):
        assert qrels.is_relevant_any(1, "d2")
        assert not qrels.is_relevant_any(2, "d2")

    def test_relevant_docs(self, qrels):
        assert qrels.relevant_docs(1, 1) == {"d1", "d2"}
        assert qrels.relevant_docs(9, 9) == frozenset()

    def test_relevant_subtopics_vector(self, qrels):
        assert qrels.relevant_subtopics(1, "d2") == {1, 2}
        assert qrels.relevant_subtopics(1, "zz") == frozenset()

    def test_subtopic_numbers_sorted(self, qrels):
        assert qrels.subtopic_numbers(1) == [1, 2]

    def test_topic_ids(self, qrels):
        assert qrels.topic_ids == [1, 2]

    def test_num_judgements(self, qrels):
        assert qrels.num_judgements() == 4


class TestTestbed:
    def test_build_from_corpus(self, small_corpus, small_testbed):
        assert len(small_testbed.topics) == len(small_corpus.topics)
        for topic, synth in zip(small_testbed.topics, small_corpus.topics):
            assert topic.query == synth.query
            assert topic.num_subtopics == len(synth.aspects)

    def test_qrels_align_with_labels(self, small_corpus, small_testbed):
        for doc_id, (topic_id, aspect) in small_corpus.labels.items():
            assert small_testbed.qrels.is_relevant(topic_id, aspect + 1, doc_id)

    def test_probabilities_replay_ground_truth(self, small_corpus, small_testbed):
        topic = small_corpus.topics[0]
        for i, aspect in enumerate(topic.aspects):
            assert small_testbed.probability(
                topic.topic_id, i + 1
            ) == pytest.approx(aspect.popularity)

    def test_uniform_probability_fallback(self):
        testbed = DiversityTestbed(
            topics=[DiversityTopic(1, "q", (Subtopic(1), Subtopic(2)))],
            qrels=DiversityQrels(),
        )
        assert testbed.probability(1, 1) == pytest.approx(0.5)

    def test_topic_lookup(self, small_testbed):
        first = small_testbed.topics[0]
        assert small_testbed.topic(first.topic_id) is first
        with pytest.raises(KeyError):
            small_testbed.topic(99999)


class TestQrelsFormat:
    def test_round_trip(self):
        qrels = DiversityQrels()
        qrels.add(1, 1, "doc-a")
        qrels.add(1, 2, "doc-b")
        text = format_diversity_qrels(qrels)
        parsed = parse_diversity_qrels(text.splitlines())
        assert parsed.relevant_docs(1, 1) == {"doc-a"}
        assert parsed.relevant_docs(1, 2) == {"doc-b"}

    def test_zero_relevance_ignored(self):
        parsed = parse_diversity_qrels(["1 1 doc-a 0", "1 1 doc-b 1"])
        assert parsed.relevant_docs(1, 1) == {"doc-b"}

    def test_comments_and_blank_lines_skipped(self):
        parsed = parse_diversity_qrels(["# header", "", "1 1 d 1"])
        assert parsed.num_judgements() == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="expected 4 fields"):
            parse_diversity_qrels(["1 1 d"])


class TestTopicsXml:
    SAMPLE = """
    <topic number="1" type="faceted">
      <query>obama family tree</query>
      <description>Find information on Obama's family.</description>
      <subtopic number="1" type="nav">TIME photo essay</subtopic>
      <subtopic number="2" type="inf">Where did they come from?</subtopic>
    </topic>
    <topic number="2">
      <query>apple</query>
    </topic>
    """

    def test_parse_topics(self):
        topics = parse_topics_xml(self.SAMPLE)
        assert len(topics) == 2
        assert topics[0].topic_id == 1
        assert topics[0].query == "obama family tree"
        assert topics[0].kind == "faceted"
        assert topics[0].num_subtopics == 2
        assert topics[0].subtopics[0].kind == "nav"

    def test_topic_without_subtopics(self):
        topics = parse_topics_xml(self.SAMPLE)
        assert topics[1].num_subtopics == 0
        assert topics[1].kind == "ambiguous"


class TestRunFormat:
    def test_round_trip(self):
        rankings = {1: [("d1", 3.5), ("d2", 2.0)], 2: [("d9", 1.0)]}
        text = format_run(rankings, tag="test")
        parsed = parse_run(text.splitlines())
        assert parsed[1] == [("d1", 3.5), ("d2", 2.0)]
        assert parsed[2] == [("d9", 1.0)]

    def test_rank_column_respected_on_parse(self):
        lines = ["1 Q0 low 2 1.0 t", "1 Q0 high 1 0.5 t"]
        parsed = parse_run(lines)
        assert [d for d, _ in parsed[1]] == ["high", "low"]

    def test_malformed_run_line(self):
        with pytest.raises(ValueError, match="expected 6 fields"):
            parse_run(["1 Q0 d 1 2.0"])

    def test_empty_run(self):
        assert format_run({}) == ""
        assert parse_run([]) == {}

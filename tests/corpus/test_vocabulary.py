"""Tests for the synthetic vocabulary and language models."""

from __future__ import annotations

import random

import pytest

from repro.corpus.vocabulary import LanguageModel, Vocabulary, ZipfSampler


class TestVocabulary:
    def test_size(self):
        assert len(Vocabulary(200, seed=1)) == 200

    def test_deterministic(self):
        assert Vocabulary(100, seed=5).words == Vocabulary(100, seed=5).words

    def test_seed_changes_words(self):
        assert Vocabulary(100, seed=1).words != Vocabulary(100, seed=2).words

    def test_unique_words(self):
        words = Vocabulary(2000, seed=3).words
        assert len(set(words)) == len(words)

    def test_prefix_diversity(self):
        # Consecutive slices (reserved for topics/aspects) must not share
        # a dominating prefix — the regression that made topic terms
        # near-identical.
        words = Vocabulary(50, seed=0).words
        prefixes = {w[:3] for w in words}
        assert len(prefixes) > 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Vocabulary(0)

    def test_indexing_and_iteration(self):
        vocab = Vocabulary(10, seed=0)
        assert vocab[0] == list(vocab)[0]
        assert vocab[0] in vocab


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10, s=1.0)
        total = sum(sampler.probability(i) for i in range(10))
        assert total == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        sampler = ZipfSampler(20, s=1.0)
        probs = [sampler.probability(i) for i in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(4, s=0.0)
        for i in range(4):
            assert sampler.probability(i) == pytest.approx(0.25)

    def test_samples_in_range(self):
        sampler = ZipfSampler(5)
        rng = random.Random(0)
        assert all(0 <= sampler.sample(rng) < 5 for _ in range(200))

    def test_empirical_head_bias(self):
        sampler = ZipfSampler(10, s=1.2)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert draws.count(0) > draws.count(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-1)
        with pytest.raises(IndexError):
            ZipfSampler(5).probability(5)


class TestLanguageModel:
    def test_requires_positive_weight(self):
        with pytest.raises(ValueError):
            LanguageModel({})
        with pytest.raises(ValueError):
            LanguageModel({"a": 0.0})

    def test_probability_normalised(self):
        lm = LanguageModel({"a": 3.0, "b": 1.0})
        assert lm.probability("a") == pytest.approx(0.75)
        assert lm.probability("zzz") == 0.0

    def test_uniform_constructor(self):
        lm = LanguageModel.uniform(["x", "y"])
        assert lm.probability("x") == pytest.approx(0.5)

    def test_zipfian_constructor_ordered(self):
        lm = LanguageModel.zipfian(["first", "second", "third"])
        assert lm.probability("first") > lm.probability("third")

    def test_sampling_stays_in_support(self):
        lm = LanguageModel({"a": 1.0, "b": 2.0})
        rng = random.Random(3)
        assert set(lm.sample(rng, 100)) <= {"a", "b"}

    def test_mixture_combines_supports(self):
        mix = LanguageModel.mixture(
            [
                (LanguageModel.uniform(["a"]), 0.5),
                (LanguageModel.uniform(["b"]), 0.5),
            ]
        )
        assert mix.probability("a") == pytest.approx(0.5)
        assert mix.probability("b") == pytest.approx(0.5)

    def test_mixture_weighting(self):
        mix = LanguageModel.mixture(
            [
                (LanguageModel.uniform(["a"]), 0.9),
                (LanguageModel.uniform(["b"]), 0.1),
            ]
        )
        assert mix.probability("a") > mix.probability("b")

    def test_mixture_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            LanguageModel.mixture([(LanguageModel.uniform(["a"]), -1.0)])

    def test_len(self):
        assert len(LanguageModel({"a": 1.0, "b": 1.0})) == 2

"""Tests for the synthetic ambiguous-topic corpus generator."""

from __future__ import annotations

import pytest

from repro.corpus.generator import Aspect, AmbiguousTopic, CorpusConfig, generate_corpus


def _tiny_config(**overrides):
    defaults = dict(
        num_topics=3, docs_per_aspect=4, background_docs=20, seed=11
    )
    defaults.update(overrides)
    return CorpusConfig(**defaults)


class TestDataTypes:
    def test_aspect_popularity_validated(self):
        with pytest.raises(ValueError):
            Aspect(name="a", query="q", terms=("t",), popularity=1.5)

    def test_topic_popularities_must_sum_to_one(self):
        aspects = (
            Aspect("a0", "q a0", ("x",), 0.5),
            Aspect("a1", "q a1", ("y",), 0.2),
        )
        with pytest.raises(ValueError):
            AmbiguousTopic(topic_id=1, query="q", terms=("q",), aspects=aspects)

    def test_topic_accessors(self):
        aspects = (
            Aspect("a0", "q x", ("x",), 0.75),
            Aspect("a1", "q y", ("y",), 0.25),
        )
        topic = AmbiguousTopic(1, "q", ("q",), aspects)
        assert topic.aspect_queries == ["q x", "q y"]
        assert topic.popularity_of("q y") == 0.25
        assert topic.popularity_of("missing") == 0.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_topics=0),
            dict(min_aspects=1),
            dict(min_aspects=9, max_aspects=8),
            dict(docs_per_aspect=0),
            dict(doc_length=(0, 10)),
            dict(doc_length=(10, 5)),
            dict(mixture=(-0.1, 0.5, 0.6)),
            dict(popularity_skew_floor=2.0),
            dict(background_pollution=-0.5),
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            _tiny_config(**overrides).validate()


class TestGeneratedCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(_tiny_config())

    def test_topic_count(self, corpus):
        assert len(corpus.topics) == 3

    def test_aspect_count_in_range(self, corpus):
        for topic in corpus.topics:
            assert 3 <= len(topic.aspects) <= 8

    def test_aspect_popularities_sum_to_one(self, corpus):
        for topic in corpus.topics:
            assert sum(a.popularity for a in topic.aspects) == pytest.approx(1.0)

    def test_aspect_queries_extend_root(self, corpus):
        for topic in corpus.topics:
            for aspect in topic.aspects:
                assert aspect.query.startswith(topic.query + " ")

    def test_document_counts(self, corpus):
        aspect_docs = sum(len(t.aspects) for t in corpus.topics) * 4
        assert len(corpus.collection) == aspect_docs + 20

    def test_labels_cover_aspect_docs(self, corpus):
        aspect_docs = sum(len(t.aspects) for t in corpus.topics) * 4
        assert len(corpus.labels) == aspect_docs

    def test_labels_match_metadata(self, corpus):
        for doc_id, (topic_id, aspect) in corpus.labels.items():
            doc = corpus.collection[doc_id]
            assert doc.metadata["topic_id"] == topic_id
            assert doc.metadata["aspect"] == aspect

    def test_documents_of_aspect(self, corpus):
        topic = corpus.topics[0]
        docs = corpus.documents_of_aspect(topic.topic_id, 0)
        assert len(docs) == 4

    def test_aspect_documents_contain_aspect_terms(self, corpus):
        topic = corpus.topics[0]
        docs = corpus.documents_of_aspect(topic.topic_id, 0)
        aspect_terms = set(topic.aspects[0].terms)
        for doc_id in docs:
            tokens = set(corpus.collection[doc_id].text.split())
            assert tokens & aspect_terms

    def test_topic_by_query(self, corpus):
        topic = corpus.topics[1]
        assert corpus.topic_by_query(topic.query) is topic
        assert corpus.topic_by_query("nope") is None

    def test_deterministic(self):
        a = generate_corpus(_tiny_config())
        b = generate_corpus(_tiny_config())
        assert a.collection.doc_ids == b.collection.doc_ids
        assert a.collection[a.collection.doc_ids[0]].text == (
            b.collection[b.collection.doc_ids[0]].text
        )

    def test_seed_changes_corpus(self):
        a = generate_corpus(_tiny_config(seed=1))
        b = generate_corpus(_tiny_config(seed=2))
        assert a.topics[0].query != b.topics[0].query


class TestPopularitySkew:
    def test_head_aspect_mentions_root_terms_more(self):
        corpus = generate_corpus(
            _tiny_config(docs_per_aspect=12, popularity_skew_floor=0.1)
        )
        topic = corpus.topics[0]
        root = topic.terms[0]

        def root_rate(aspect_index: int) -> float:
            docs = corpus.documents_of_aspect(topic.topic_id, aspect_index)
            counts = [
                corpus.collection[d].text.split().count(root) for d in docs
            ]
            return sum(counts) / len(counts)

        # Aspect 0 is the most popular by construction (Zipf order).
        assert root_rate(0) > root_rate(len(topic.aspects) - 1)


class TestPollution:
    def test_polluted_background_mentions_topic_terms(self):
        corpus = generate_corpus(
            _tiny_config(background_docs=100, seed=3)
        )
        all_topic_terms = {
            t for topic in corpus.topics for t in topic.terms
        }
        polluted = 0
        for doc in corpus.collection:
            if doc.metadata.get("topic_id") is None:
                if set(doc.text.split()) & all_topic_terms:
                    polluted += 1
        # background_pollution defaults to 0.35: expect some but not all.
        assert 10 <= polluted <= 70

    def test_pollution_zero_keeps_background_clean(self):
        corpus = generate_corpus(_tiny_config(background_pollution=0.0))
        all_topic_terms = {
            t for topic in corpus.topics for t in topic.terms
        }
        for doc in corpus.collection:
            if doc.metadata.get("topic_id") is None:
                assert not set(doc.text.split()) & all_topic_terms

    def test_vocabulary_too_small_raises(self):
        with pytest.raises(ValueError, match="vocabulary too small"):
            generate_corpus(_tiny_config(num_topics=60, vocabulary_size=300))

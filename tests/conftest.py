"""Shared fixtures: a small deterministic corpus/engine/log stack.

Session-scoped so the expensive builds (corpus generation, indexing,
query-log synthesis, miner training) happen once for the whole suite.
Tests must treat these as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.core.optselect import OptSelect
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.trec import build_testbed
from repro.querylog.specializations import SpecializationMiner
from repro.querylog.synthesis import AOL_PROFILE, generate_query_log
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import SearchEngine


@pytest.fixture(scope="session")
def small_corpus():
    return generate_corpus(
        CorpusConfig(
            num_topics=6,
            docs_per_aspect=8,
            background_docs=80,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def small_testbed(small_corpus):
    return build_testbed(small_corpus)


@pytest.fixture(scope="session")
def small_engine(small_corpus):
    return SearchEngine(small_corpus.collection)


@pytest.fixture(scope="session")
def small_log(small_corpus):
    return generate_query_log(small_corpus, AOL_PROFILE.scaled(0.08))


@pytest.fixture(scope="session")
def small_miner(small_log):
    return SpecializationMiner(small_log).build()


#: The standard small-scale config shared by framework/serving tests.
STANDARD_CONFIG = FrameworkConfig(k=10, candidates=80, spec_results=10)


@pytest.fixture(scope="session")
def standard_config():
    return STANDARD_CONFIG


@pytest.fixture(scope="session")
def small_framework(small_engine, small_miner):
    return DiversificationFramework(
        small_engine, small_miner, OptSelect(), STANDARD_CONFIG
    )


@pytest.fixture(scope="session")
def framework_factory(small_engine, small_miner):
    """Factory for *fresh* (cold-cache) frameworks at the standard small
    scale.  Serving tests need a new framework per test so cache counters
    start from zero; this deduplicates the per-module copies of the same
    constructor call.  Pass ``diversifier=``/``config=`` to override the
    defaults (reference OptSelect, :data:`STANDARD_CONFIG`)."""

    def make(diversifier=None, config=None, **kwargs):
        return DiversificationFramework(
            small_engine,
            small_miner,
            diversifier if diversifier is not None else OptSelect(),
            config or STANDARD_CONFIG,
            **kwargs,
        )

    return make


@pytest.fixture()
def fresh_framework(framework_factory):
    """A cold-cache framework, new for every test."""
    return framework_factory()


@pytest.fixture(scope="session")
def topic_queries(small_corpus):
    """Every corpus topic's root query, in topic order."""
    return [topic.query for topic in small_corpus.topics]


@pytest.fixture(scope="session")
def ambiguous_topic(small_corpus, small_miner):
    """A corpus topic whose root query the miner actually detects."""
    for topic in small_corpus.topics:
        if small_miner.is_ambiguous(topic.query):
            return topic
    pytest.skip("no detectable ambiguous topic in the small fixture log")


@pytest.fixture()
def tiny_collection():
    """A handful of hand-written documents for retrieval unit tests."""
    return DocumentCollection(
        [
            Document("apple-pc", "apple computer iphone store macbook laptop",
                     title="Apple Inc"),
            Document("apple-fruit", "apple fruit orchard harvest cider tree",
                     title="Apple fruit"),
            Document("apple-both", "apple computer and apple fruit together"),
            Document("banana", "banana fruit tropical yellow"),
            Document("empty-ish", "the of and to"),
        ]
    )

"""Tests for the Query-Flow Graph."""

from __future__ import annotations

import random

import pytest

from repro.querylog.flowgraph import QueryFlowGraph, is_specialization
from repro.querylog.records import QueryRecord
from repro.querylog.sessions import Session


def _session(user, *queries, t0=0.0, gap=10.0):
    records = tuple(
        QueryRecord(t0 + i * gap, user, q) for i, q in enumerate(queries)
    )
    return Session(records)


@pytest.fixture()
def graph():
    sessions = [
        _session("u1", "leopard", "leopard tank"),
        _session("u2", "leopard", "leopard tank"),
        _session("u3", "leopard", "leopard mac os x"),
        _session("u4", "leopard tank", "panzer museum"),
    ]
    return QueryFlowGraph.build(sessions)


class TestIsSpecialization:
    def test_term_superset(self):
        assert is_specialization("leopard", "leopard tank")
        assert is_specialization("leopard", "big leopard cat")

    def test_not_reflexive(self):
        assert not is_specialization("leopard", "leopard")

    def test_generalisation_rejected(self):
        assert not is_specialization("leopard tank", "leopard")

    def test_unrelated_rejected(self):
        assert not is_specialization("leopard", "apple pie")

    def test_string_prefix_extension(self):
        assert is_specialization("new york", "new york pizza")

    def test_empty_inputs(self):
        assert not is_specialization("", "x")
        assert not is_specialization("x", "")


class TestGraphConstruction:
    def test_counts_transitions(self, graph):
        edge = graph.edge("leopard", "leopard tank")
        assert edge is not None
        assert edge.count == 2

    def test_transition_probability(self, graph):
        assert graph.transition_probability("leopard", "leopard tank") == (
            pytest.approx(2 / 3)
        )
        assert graph.transition_probability("leopard", "leopard mac os x") == (
            pytest.approx(1 / 3)
        )

    def test_unknown_edges(self, graph):
        assert graph.edge("leopard", "panzer museum") is None
        assert graph.transition_probability("x", "y") == 0.0

    def test_self_loops_ignored(self):
        graph = QueryFlowGraph.build([_session("u", "a", "a", "b")])
        assert graph.edge("a", "a") is None
        assert graph.edge("a", "b") is not None

    def test_node_and_edge_counts(self, graph):
        assert graph.num_edges == 3
        assert graph.num_nodes == 4

    def test_query_count(self, graph):
        assert graph.query_count("leopard") == 3
        assert graph.query_count("unseen") == 0

    def test_successors_sorted(self, graph):
        assert graph.successors("leopard") == [
            "leopard mac os x",
            "leopard tank",
        ]

    def test_specialization_successors_by_count(self, graph):
        assert graph.specialization_successors("leopard") == [
            "leopard tank",
            "leopard mac os x",
        ]

    def test_edge_features(self, graph):
        edge = graph.edge("leopard", "leopard tank")
        assert edge.specialization
        assert edge.mean_gap == pytest.approx(10.0)
        assert 0.0 < edge.jaccard < 1.0


class TestChainProbability:
    def test_specialization_floor(self, graph):
        assert graph.chain_probability("leopard", "leopard tank") >= 0.9

    def test_unrelated_transition_low(self, graph):
        p = graph.chain_probability("leopard tank", "panzer museum")
        assert 0.0 < p < 0.9

    def test_unknown_pair_zero(self, graph):
        assert graph.chain_probability("a", "b") == 0.0

    def test_bounded(self, graph):
        for q in ("leopard", "leopard tank"):
            for q2 in graph.successors(q):
                assert 0.0 <= graph.chain_probability(q, q2) <= 1.0


class TestLogicalSessions:
    def test_low_threshold_keeps_sessions_whole(self, graph):
        raw = [_session("u9", "leopard", "leopard tank", "panzer museum")]
        logical = graph.logical_sessions(raw, threshold=0.0)
        assert len(logical) == 1

    def test_high_threshold_cuts_weak_links(self, graph):
        raw = [_session("u9", "leopard", "leopard tank", "panzer museum")]
        logical = graph.logical_sessions(raw, threshold=0.95)
        # leopard→leopard tank survives (specialization ≥ 0.9 < 0.95? no)
        # with threshold 0.95 even the specialization edge is cut.
        assert len(logical) >= 2

    def test_mid_threshold_splits_topic_drift(self, graph):
        raw = [_session("u9", "leopard", "leopard tank", "panzer museum")]
        logical = graph.logical_sessions(raw, threshold=0.85)
        assert [s.queries for s in logical] == [
            ("leopard", "leopard tank"),
            ("panzer museum",),
        ]

    def test_threshold_validation(self, graph):
        with pytest.raises(ValueError):
            graph.logical_sessions([], threshold=1.5)

    def test_records_preserved(self, graph):
        raw = [_session("u9", "a b", "c d")]
        logical = graph.logical_sessions(raw, threshold=0.99)
        total = sum(len(s) for s in logical)
        assert total == 2


class TestRandomWalk:
    def test_walk_follows_edges(self, graph):
        rng = random.Random(0)
        path = graph.random_walk("leopard", rng, max_steps=2)
        assert path[0] == "leopard"
        assert path[1] in ("leopard tank", "leopard mac os x")

    def test_walk_stops_at_absorbing_node(self, graph):
        rng = random.Random(0)
        path = graph.random_walk("panzer museum", rng, max_steps=5)
        assert path == ["panzer museum"]

    def test_walk_respects_max_steps(self, graph):
        rng = random.Random(1)
        path = graph.random_walk("leopard", rng, max_steps=1)
        assert len(path) <= 2

    def test_min_probability_prunes(self, graph):
        rng = random.Random(2)
        path = graph.random_walk("leopard", rng, max_steps=3, min_probability=0.99)
        assert path == ["leopard"]

"""Tests for the click models and click-boosted probabilities."""

from __future__ import annotations

import random

import pytest

from repro.core.ambiguity import SpecializationSet
from repro.querylog.clickmodels import (
    CascadeModel,
    PositionBiasedModel,
    click_boosted_probabilities,
)
from repro.querylog.records import QueryRecord
from repro.querylog.sessions import Session


class TestPositionBiasedModel:
    def test_probability_decays_with_rank(self):
        model = PositionBiasedModel()
        probs = [model.click_probability(r, 0.65) for r in (1, 2, 5, 10)]
        assert probs == sorted(probs, reverse=True)

    def test_probability_capped_at_one(self):
        assert PositionBiasedModel().click_probability(1, 5.0) == 1.0

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            PositionBiasedModel().click_probability(0, 0.5)

    def test_simulation_prefers_top_ranks(self):
        model = PositionBiasedModel()
        rng = random.Random(0)
        results = [f"d{i}" for i in range(10)]
        top_clicks = 0
        bottom_clicks = 0
        for _ in range(500):
            clicks = model.simulate(results, rng)
            top_clicks += "d0" in clicks
            bottom_clicks += "d9" in clicks
        assert top_clicks > 3 * bottom_clicks

    def test_multiple_clicks_possible(self):
        model = PositionBiasedModel()
        rng = random.Random(1)
        lengths = {
            len(model.simulate([f"d{i}" for i in range(10)], rng, 0.9))
            for _ in range(200)
        }
        assert any(n >= 2 for n in lengths)


class TestCascadeModel:
    def test_stops_after_first_click(self):
        model = CascadeModel()
        rng = random.Random(2)
        for _ in range(100):
            clicks = model.simulate([f"d{i}" for i in range(10)], rng, 0.9)
            assert len(clicks) <= 1

    def test_continuation_validation(self):
        with pytest.raises(ValueError):
            CascadeModel(continuation=1.5)

    def test_deep_ranks_exponentially_unlikely(self):
        model = CascadeModel(continuation=0.5)
        p1 = model.click_probability(1, 0.8)
        p4 = model.click_probability(4, 0.8)
        assert p4 == pytest.approx(p1 * 0.5**3)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            CascadeModel().click_probability(0, 0.5)


def _session(final_query: str, clicked: bool) -> Session:
    clicks = ("d",) if clicked else ()
    return Session(
        (
            QueryRecord(0.0, "u", "root"),
            QueryRecord(5.0, "u", final_query, clicks=clicks),
        )
    )


class TestClickBoostedProbabilities:
    @pytest.fixture()
    def specializations(self):
        return SpecializationSet(
            "root", (("root a", 0.5), ("root b", 0.5))
        )

    def test_satisfied_specialization_boosted(self, specializations):
        sessions = [
            _session("root a", clicked=True),
            _session("root a", clicked=True),
            _session("root b", clicked=False),
            _session("root b", clicked=False),
        ]
        boosted = click_boosted_probabilities(specializations, sessions, boost=1.0)
        assert boosted.probability("root a") > 0.5
        assert boosted.probability("root b") < 0.5
        assert sum(p for _, p in boosted) == pytest.approx(1.0)

    def test_zero_boost_is_identity(self, specializations):
        out = click_boosted_probabilities(
            specializations, [_session("root a", True)], boost=0.0
        )
        assert out is specializations

    def test_unobserved_specializations_keep_prior_ratio(self, specializations):
        out = click_boosted_probabilities(specializations, [], boost=1.0)
        assert out.probability("root a") == pytest.approx(0.5)

    def test_negative_boost_rejected(self, specializations):
        with pytest.raises(ValueError):
            click_boosted_probabilities(specializations, [], boost=-0.5)

    def test_empty_specializations_passthrough(self):
        empty = SpecializationSet("q", ())
        assert click_boosted_probabilities(empty, [], boost=1.0) is empty

    def test_sessions_with_other_finals_ignored(self, specializations):
        sessions = [_session("unrelated query", clicked=True)]
        out = click_boosted_probabilities(specializations, sessions, boost=2.0)
        assert out.probability("root a") == pytest.approx(0.5)

"""Tests for the query-log data model."""

from __future__ import annotations

import pytest

from repro.querylog.records import QueryLog, QueryRecord


class TestQueryRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryRecord(0.0, "u", "")
        with pytest.raises(ValueError):
            QueryRecord(0.0, "", "q")

    def test_clicked_property(self):
        assert QueryRecord(0.0, "u", "q", clicks=("d",)).clicked
        assert not QueryRecord(0.0, "u", "q").clicked

    def test_chronological_ordering(self):
        early = QueryRecord(1.0, "u", "q")
        late = QueryRecord(2.0, "u", "q")
        assert early < late

    def test_results_and_clicks_not_compared(self):
        a = QueryRecord(1.0, "u", "q", results=("d1",))
        b = QueryRecord(1.0, "u", "q", results=("d2",))
        assert a == b


class TestQueryLog:
    @pytest.fixture()
    def log(self):
        return QueryLog(
            [
                QueryRecord(30.0, "u2", "banana"),
                QueryRecord(10.0, "u1", "apple"),
                QueryRecord(20.0, "u1", "apple iphone", clicks=("d",)),
                QueryRecord(40.0, "u1", "apple"),
            ],
            name="test",
        )

    def test_sorted_on_construction(self, log):
        times = [r.timestamp for r in log]
        assert times == sorted(times)

    def test_frequency(self, log):
        assert log.frequency("apple") == 2
        assert log.frequency("apple iphone") == 1
        assert log.frequency("unknown") == 0

    def test_distinct_queries_and_users(self, log):
        assert log.distinct_queries == 3
        assert log.num_users == 2

    def test_user_stream_chronological(self, log):
        stream = log.user_stream("u1")
        assert [r.query for r in stream] == ["apple", "apple iphone", "apple"]

    def test_user_stream_unknown_user(self, log):
        assert log.user_stream("nobody") == []

    def test_time_span(self, log):
        assert log.time_span == (10.0, 40.0)

    def test_empty_log(self):
        log = QueryLog()
        assert len(log) == 0
        assert log.time_span == (0.0, 0.0)
        assert log.num_users == 0

    def test_split_chronological(self, log):
        train, test = log.split(0.5)
        assert len(train) == 2
        assert len(test) == 2
        assert train[-1].timestamp <= test[0].timestamp
        assert train.name == "test-train"

    def test_split_validation(self, log):
        with pytest.raises(ValueError):
            log.split(0.0)
        with pytest.raises(ValueError):
            log.split(1.0)

    def test_contains_query(self, log):
        assert log.contains_query("banana")
        assert not log.contains_query("cherry")

    def test_frequencies_returns_copy(self, log):
        freqs = log.frequencies()
        freqs["apple"] = 999
        assert log.frequency("apple") == 2

    def test_merged_with(self, log):
        other = QueryLog([QueryRecord(5.0, "u3", "cherry")])
        merged = log.merged_with(other)
        assert len(merged) == len(log) + 1
        assert merged[0].query == "cherry"

    def test_indexing(self, log):
        assert log[0].timestamp == 10.0

"""Tests for time-gap sessionization."""

from __future__ import annotations

import pytest

from repro.querylog.records import QueryLog, QueryRecord
from repro.querylog.sessions import (
    DEFAULT_SESSION_TIMEOUT,
    Session,
    split_by_time_gap,
)


def _r(t, user, query, clicked=False):
    return QueryRecord(t, user, query, clicks=("d",) if clicked else ())


class TestSession:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            Session(())

    def test_single_user_enforced(self):
        with pytest.raises(ValueError):
            Session((_r(0, "a", "x"), _r(1, "b", "y")))

    def test_chronology_enforced(self):
        with pytest.raises(ValueError):
            Session((_r(5, "a", "x"), _r(1, "a", "y")))

    def test_properties(self):
        s = Session((_r(10, "u", "a"), _r(30, "u", "b", clicked=True)))
        assert s.user_id == "u"
        assert s.queries == ("a", "b")
        assert s.start == 10 and s.end == 30 and s.duration == 20
        assert s.final_query == "b"
        assert s.is_satisfactory
        assert len(s) == 2

    def test_unsatisfactory_when_final_unclicked(self):
        s = Session((_r(0, "u", "a", clicked=True), _r(1, "u", "b")))
        assert not s.is_satisfactory

    def test_pairs(self):
        s = Session((_r(0, "u", "a"), _r(1, "u", "b"), _r(2, "u", "c")))
        pairs = [(x.query, y.query) for x, y in s.pairs()]
        assert pairs == [("a", "b"), ("b", "c")]


class TestSplitByTimeGap:
    def test_gap_splits(self):
        log = QueryLog([_r(0, "u", "a"), _r(DEFAULT_SESSION_TIMEOUT + 1, "u", "b")])
        sessions = split_by_time_gap(log)
        assert [s.queries for s in sessions] == [("a",), ("b",)]

    def test_within_timeout_stays_together(self):
        log = QueryLog([_r(0, "u", "a"), _r(60, "u", "b")])
        assert [s.queries for s in split_by_time_gap(log)] == [("a", "b")]

    def test_users_never_mixed(self):
        log = QueryLog([_r(0, "u1", "a"), _r(1, "u2", "b")])
        sessions = split_by_time_gap(log)
        assert len(sessions) == 2
        assert {s.user_id for s in sessions} == {"u1", "u2"}

    def test_consecutive_duplicates_collapsed(self):
        log = QueryLog([_r(0, "u", "a"), _r(5, "u", "a"), _r(9, "u", "b")])
        [session] = split_by_time_gap(log)
        assert session.queries == ("a", "b")

    def test_duplicate_collapse_keeps_click_evidence(self):
        log = QueryLog(
            [_r(0, "u", "a"), QueryRecord(5, "u", "a", clicks=("doc",))]
        )
        [session] = split_by_time_gap(log)
        assert session.records[0].clicked

    def test_custom_timeout(self):
        log = QueryLog([_r(0, "u", "a"), _r(100, "u", "b")])
        assert len(split_by_time_gap(log, timeout=50)) == 2
        assert len(split_by_time_gap(log, timeout=200)) == 1

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            split_by_time_gap(QueryLog(), timeout=0)

    def test_accepts_plain_record_iterable(self):
        records = [_r(0, "u", "a"), _r(10, "u", "b")]
        assert len(split_by_time_gap(records)) == 1

    def test_empty_log(self):
        assert split_by_time_gap(QueryLog()) == []

    def test_fixture_log_sessions_reasonable(self, small_log):
        sessions = split_by_time_gap(small_log)
        assert sessions
        # every record lands in exactly one session
        assert sum(len(s) for s in sessions) <= len(small_log)
        for session in sessions:
            assert session.duration <= 10 * DEFAULT_SESSION_TIMEOUT

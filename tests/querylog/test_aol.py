"""Tests for the AOL TSV log format."""

from __future__ import annotations

import pytest

from repro.querylog.aol import format_aol, parse_aol
from repro.querylog.records import QueryLog, QueryRecord

SAMPLE = [
    "AnonID\tQuery\tQueryTime\tItemRank\tClickURL",
    "142\tleopard\t2006-03-01 10:00:00\t\t",
    "142\tleopard tank\t2006-03-01 10:01:00\t1\thttp://tanks.example/a",
    "142\tleopard tank\t2006-03-01 10:01:00\t3\thttp://tanks.example/b",
    "217\tapple pie recipe\t2006-03-02 08:30:00\t2\thttp://food.example",
]


class TestParseAol:
    def test_rows_merged_per_submission(self):
        log = parse_aol(SAMPLE)
        assert len(log) == 3  # two rows of the same click merge

    def test_clicks_collected_in_rank_order(self):
        log = parse_aol(SAMPLE)
        record = next(r for r in log if r.query == "leopard tank")
        assert record.clicks == (
            "http://tanks.example/a",
            "http://tanks.example/b",
        )

    def test_unclicked_submission(self):
        log = parse_aol(SAMPLE)
        record = next(r for r in log if r.query == "leopard")
        assert not record.clicked

    def test_user_ids_preserved(self):
        log = parse_aol(SAMPLE)
        assert set(r.user_id for r in log) == {"142", "217"}

    def test_timestamps_chronological(self):
        log = parse_aol(SAMPLE)
        times = [r.timestamp for r in log]
        assert times == sorted(times)

    def test_header_and_blank_lines_skipped(self):
        log = parse_aol(["", SAMPLE[0], "", SAMPLE[1]])
        assert len(log) == 1

    def test_three_column_rows_accepted(self):
        log = parse_aol(["99\tfoo bar\t2006-05-01 00:00:00"])
        assert len(log) == 1
        assert not log[0].clicked

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError, match="expected 5"):
            parse_aol(["only\ttwo"])

    def test_empty_query_rows_dropped(self):
        log = parse_aol(["5\t \t2006-05-01 00:00:00\t\t"])
        assert len(log) == 0

    def test_named_log(self):
        assert parse_aol(SAMPLE, name="aol-part-1").name == "aol-part-1"


class TestRoundTrip:
    def test_format_then_parse(self):
        log = parse_aol(SAMPLE)
        lines = list(format_aol(log))
        reparsed = parse_aol(lines)
        assert len(reparsed) == len(log)
        for a, b in zip(log, reparsed):
            assert (a.user_id, a.query, a.clicks) == (b.user_id, b.query, b.clicks)
            assert a.timestamp == pytest.approx(b.timestamp)

    def test_format_emits_header_first(self):
        lines = list(format_aol(QueryLog()))
        assert lines[0].startswith("AnonID\t")

    def test_click_ranks_taken_from_results(self):
        log = QueryLog(
            [
                QueryRecord(
                    1141207200.0,
                    "u1",
                    "leopard",
                    results=("u-a", "u-b"),
                    clicks=("u-b",),
                )
            ]
        )
        lines = list(format_aol(log))
        assert lines[1].split("\t")[3] == "2"

    def test_pipeline_compatibility(self):
        """A parsed AOL log must flow through sessionization and mining."""
        from repro.querylog.sessions import split_by_time_gap
        from repro.querylog.specializations import SpecializationMiner

        rows = [SAMPLE[0]]
        for i in range(6):
            rows.append(f"{i}\tleopard\t2006-03-01 10:0{i}:00\t\t")
            rows.append(
                f"{i}\tleopard tank\t2006-03-01 10:0{i}:30\t1\thttp://x"
            )
        for i in range(6, 9):
            rows.append(f"{i}\tleopard\t2006-03-01 11:0{i - 6}:00\t\t")
            rows.append(
                f"{i}\tleopard print\t2006-03-01 11:0{i - 6}:30\t1\thttp://y"
            )
        log = parse_aol(rows)
        assert split_by_time_gap(log)
        miner = SpecializationMiner(log).build()
        mined = miner.mine("leopard")
        assert set(mined.queries) == {"leopard tank", "leopard print"}

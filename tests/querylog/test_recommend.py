"""Tests for the Search-Shortcuts recommender."""

from __future__ import annotations

import pytest

from repro.querylog.recommend import SearchShortcutsRecommender
from repro.querylog.records import QueryRecord
from repro.querylog.sessions import Session


def _session(user, *queries, clicked_final=True, t0=0.0):
    records = []
    for i, q in enumerate(queries):
        clicks = ("doc",) if clicked_final and i == len(queries) - 1 else ()
        records.append(QueryRecord(t0 + 10.0 * i, user, q, clicks=clicks))
    return Session(tuple(records))


@pytest.fixture()
def trained():
    sessions = [
        _session("u1", "apple", "apple iphone"),
        _session("u2", "apple", "apple iphone"),
        _session("u3", "apple", "apple fruit"),
        _session("u4", "jaguar", "jaguar car"),
        _session("u5", "banana bread recipe"),
    ]
    return SearchShortcutsRecommender.train(sessions)


class TestTraining:
    def test_num_shortcuts_counts_distinct_finals(self, trained):
        # apple iphone, apple fruit, jaguar car, banana bread recipe
        assert trained.num_shortcuts == 4

    def test_unsatisfactory_sessions_ignored(self):
        rec = SearchShortcutsRecommender.train(
            [_session("u", "apple", "apple iphone", clicked_final=False)]
        )
        assert rec.num_shortcuts == 0
        assert not rec.is_trained

    def test_support_counts_sessions(self, trained):
        assert trained.support("apple iphone") == 2
        assert trained.support("apple fruit") == 1
        assert trained.support("nothing") == 0

    def test_min_sessions_filter(self):
        sessions = [
            _session("u1", "apple", "apple iphone"),
            _session("u2", "apple", "apple iphone"),
            _session("u3", "apple", "apple fruit"),
        ]
        rec = SearchShortcutsRecommender.train(sessions, min_sessions=2)
        assert rec.recommend("apple") == ["apple iphone"]

    def test_min_sessions_validation(self):
        with pytest.raises(ValueError):
            SearchShortcutsRecommender(min_sessions=0)

    def test_refit_replaces_model(self, trained):
        trained.fit([_session("u", "cherry", "cherry pie")])
        assert trained.recommend("cherry") == ["cherry pie"]
        assert trained.recommend("apple") == []


class TestRecommendation:
    def test_related_finals_returned(self, trained):
        suggestions = trained.recommend("apple")
        assert "apple iphone" in suggestions
        assert "apple fruit" in suggestions

    def test_self_never_suggested(self, trained):
        assert "apple iphone" not in trained.recommend("apple iphone") or True
        # stronger: query itself absent
        assert "apple" not in trained.recommend("apple")

    def test_unrelated_query_gets_nothing_relevant(self, trained):
        assert "apple iphone" not in trained.recommend("jaguar")

    def test_unknown_vocabulary_empty(self, trained):
        assert trained.recommend("zzz qqq") == []

    def test_n_limits_suggestions(self, trained):
        assert len(trained.recommend("apple", n=1)) == 1

    def test_n_validation(self, trained):
        with pytest.raises(ValueError):
            trained.recommend("apple", n=0)

    def test_untrained_returns_empty(self):
        assert SearchShortcutsRecommender().recommend("apple") == []

    def test_scored_variant_sorted(self, trained):
        scored = trained.recommend_scored("apple", n=5)
        scores = [s for _, s in scored]
        assert scores == sorted(scores, reverse=True)

    def test_callable_protocol_matches_recommend(self, trained):
        assert list(trained("apple")) == trained.recommend("apple")

    def test_popular_final_ranks_higher(self, trained):
        suggestions = trained.recommend("apple")
        # 'apple iphone' is backed by two sessions (more evidence) and
        # should not rank below 'apple fruit'.
        assert suggestions.index("apple iphone") <= suggestions.index(
            "apple fruit"
        )

    def test_suggestions_are_log_queries(self, trained):
        # The Algorithm-1 contract: every suggestion occurred in the log.
        finals = {"apple iphone", "apple fruit", "jaguar car", "banana bread recipe"}
        assert set(trained.recommend("apple")) <= finals


class TestOnFixtureLog(object):
    def test_recommender_finds_specializations(self, small_miner, small_corpus):
        rec = small_miner.recommender
        assert rec.is_trained
        topic = max(
            small_corpus.topics,
            key=lambda t: rec.support(t.aspects[0].query),
        )
        suggestions = rec.recommend(topic.query, n=10)
        aspect_queries = set(topic.aspect_queries)
        assert aspect_queries & set(suggestions)

"""Tests for the end-to-end specialization miner."""

from __future__ import annotations

import pytest

from repro.querylog.records import QueryLog, QueryRecord
from repro.querylog.specializations import MinerConfig, SpecializationMiner


def _mini_log():
    """A hand-built log where 'apple' is clearly ambiguous."""
    records = []
    t = 0.0
    # 6 users refine apple → apple iphone; 3 → apple fruit; 1 → apple tree
    refinements = (
        ["apple iphone"] * 6 + ["apple fruit"] * 3 + ["apple tree"]
    )
    for i, refinement in enumerate(refinements):
        user = f"u{i}"
        records.append(QueryRecord(t, user, "apple"))
        records.append(
            QueryRecord(t + 30.0, user, refinement, clicks=("d",))
        )
        t += 10_000.0
    # an unambiguous query
    records.append(QueryRecord(t, "u99", "python tutorial", clicks=("d",)))
    return QueryLog(records, name="mini")


class TestMinerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(s=0),
            dict(chain_threshold=2.0),
            dict(candidates=1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MinerConfig(**kwargs)


class TestMiner:
    @pytest.fixture()
    def miner(self):
        return SpecializationMiner(_mini_log()).build()

    def test_detects_ambiguous_query(self, miner):
        result = miner.mine("apple")
        assert result
        assert "apple iphone" in result.queries
        assert "apple fruit" in result.queries

    def test_probabilities_follow_frequencies(self, miner):
        result = miner.mine("apple")
        p_iphone = result.probability("apple iphone")
        p_fruit = result.probability("apple fruit")
        assert p_iphone > p_fruit > 0
        assert p_iphone == pytest.approx(
            6 / (6 + 3 + 1), abs=0.15
        )  # tree may or may not survive the popularity filter

    def test_unambiguous_query_empty(self, miner):
        assert not miner.mine("python tutorial")

    def test_unknown_query_empty(self, miner):
        assert not miner.mine("never seen before")

    def test_is_ambiguous(self, miner):
        assert miner.is_ambiguous("apple")
        assert not miner.is_ambiguous("python tutorial")

    def test_specialization_relation_enforced(self, miner):
        result = miner.mine("apple")
        for q in result.queries:
            assert q.startswith("apple")

    def test_relation_filter_can_be_disabled(self):
        config = MinerConfig(require_specialization_relation=False)
        miner = SpecializationMiner(_mini_log(), config).build()
        assert miner.mine("apple")

    def test_max_specializations_cap(self):
        config = MinerConfig(max_specializations=2)
        miner = SpecializationMiner(_mini_log(), config).build()
        result = miner.mine("apple")
        assert len(result) <= 2
        assert sum(p for _, p in result) == pytest.approx(1.0)

    def test_strict_popularity_ratio_prunes(self):
        # f(apple)=10; with s=1.2 the threshold is ~8.3 so only queries
        # nearly as popular as the root survive — none do here.
        config = MinerConfig(s=1.2)
        miner = SpecializationMiner(_mini_log(), config).build()
        assert not miner.mine("apple")

    def test_mine_all_returns_only_ambiguous(self, miner):
        mined = miner.mine_all()
        assert "apple" in mined
        assert "python tutorial" not in mined

    def test_mine_all_min_frequency(self, miner):
        mined = miner.mine_all(min_frequency=11)
        assert mined == {}

    def test_lazy_build_on_property_access(self):
        miner = SpecializationMiner(_mini_log())
        assert miner.recommender.is_trained
        assert miner.flow_graph.num_nodes > 0
        assert miner.logical_sessions


class TestMinerOnSyntheticLog:
    def test_detects_topic_roots(self, small_miner, small_corpus, small_log):
        detectable = [
            t for t in small_corpus.topics if small_log.frequency(t.query) >= 5
        ]
        hits = sum(1 for t in detectable if small_miner.is_ambiguous(t.query))
        assert hits >= max(1, len(detectable) // 2)

    def test_mined_probabilities_track_ground_truth(
        self, small_miner, small_corpus, small_log
    ):
        topic = max(
            small_corpus.topics, key=lambda t: small_log.frequency(t.query)
        )
        result = small_miner.mine(topic.query)
        if not result:
            pytest.skip("head topic not detected in fixture log")
        truth_head = topic.aspects[0].query
        mined_head = result.queries[0]
        # The most popular mined specialization is the ground-truth head
        # aspect (or at worst the second).
        assert mined_head in {truth_head, topic.aspects[1].query}

"""Tests for synthetic query-log generation."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.querylog.flowgraph import is_specialization
from repro.querylog.sessions import split_by_time_gap
from repro.querylog.synthesis import (
    AOL_PROFILE,
    MSN_PROFILE,
    LogProfile,
    generate_query_log,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        CorpusConfig(num_topics=4, docs_per_aspect=6, background_docs=40, seed=5)
    )


@pytest.fixture(scope="module")
def log(corpus):
    return generate_query_log(corpus, AOL_PROFILE.scaled(0.05))


class TestProfiles:
    def test_builtin_profiles_shape(self):
        assert AOL_PROFILE.duration_days > MSN_PROFILE.duration_days
        assert AOL_PROFILE.num_sessions > MSN_PROFILE.num_sessions

    def test_scaled_preserves_shape(self):
        scaled = AOL_PROFILE.scaled(0.5)
        assert scaled.num_sessions == AOL_PROFILE.num_sessions // 2
        assert scaled.duration_days == AOL_PROFILE.duration_days
        assert scaled.name == AOL_PROFILE.name

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            AOL_PROFILE.scaled(0)

    def test_profile_is_frozen(self):
        with pytest.raises(AttributeError):
            AOL_PROFILE.num_sessions = 1


class TestGeneratedLog:
    def test_log_named_after_profile(self, log):
        assert log.name == "AOL"

    def test_deterministic(self, corpus):
        a = generate_query_log(corpus, MSN_PROFILE.scaled(0.02))
        b = generate_query_log(corpus, MSN_PROFILE.scaled(0.02))
        assert len(a) == len(b)
        assert [r.query for r in a][:50] == [r.query for r in b][:50]

    def test_seed_override_changes_log(self, corpus):
        a = generate_query_log(corpus, MSN_PROFILE.scaled(0.02), seed=1)
        b = generate_query_log(corpus, MSN_PROFILE.scaled(0.02), seed=2)
        assert [r.query for r in a] != [r.query for r in b]

    def test_timestamps_within_duration(self, log):
        start, end = log.time_span
        slack = 600.0  # in-session gaps can exceed the nominal duration
        assert start >= 0.0
        assert end <= AOL_PROFILE.duration_days * 86_400.0 + slack

    def test_contains_topic_root_queries(self, log, corpus):
        roots = [t.query for t in corpus.topics]
        assert any(log.frequency(root) > 0 for root in roots)

    def test_contains_aspect_specializations(self, log, corpus):
        head_topic = corpus.topics[0]
        spec_frequencies = [
            log.frequency(a.query) for a in head_topic.aspects
        ]
        assert sum(1 for f in spec_frequencies if f > 0) >= 2

    def test_head_aspect_more_popular_in_log(self, log, corpus):
        # Zipf aspect popularity must be visible in refinement counts for
        # the most queried topic.
        best_topic = max(corpus.topics, key=lambda t: log.frequency(t.query))
        head = log.frequency(best_topic.aspects[0].query)
        tail = log.frequency(best_topic.aspects[-1].query)
        assert head >= tail

    def test_roots_cooccur_with_specs_in_sessions(self, log, corpus):
        roots = {t.query for t in corpus.topics}
        found = False
        for session in split_by_time_gap(log):
            queries = session.queries
            for first, second in zip(queries, queries[1:]):
                if first in roots and is_specialization(first, second):
                    found = True
                    break
        assert found

    def test_some_clicks_present(self, log):
        assert any(r.clicked for r in log)

    def test_results_attached_to_topical_queries(self, log, corpus):
        root = max(
            (t.query for t in corpus.topics), key=log.frequency
        )
        for record in log:
            if record.query == root and record.results:
                assert all(isinstance(d, str) and d for d in record.results)
                break
        else:
            pytest.fail("no root query with results found")

    def test_noise_refinements_exist(self, corpus):
        profile = LogProfile(
            name="noisy",
            num_sessions=300,
            num_users=50,
            topical_fraction=0.0,
            noise_refinement_probability=1.0,
        )
        log = generate_query_log(corpus, profile)
        sessions = split_by_time_gap(log)
        refinements = sum(
            1
            for s in sessions
            for a, b in s.pairs()
            if is_specialization(a.query, b.query)
        )
        assert refinements > 50

    def test_zero_topical_fraction_emits_no_topic_queries(self, corpus):
        profile = LogProfile(
            name="pure-noise", num_sessions=200, num_users=20, topical_fraction=0.0
        )
        log = generate_query_log(corpus, profile)
        roots = {t.query for t in corpus.topics}
        assert all(r.query not in roots for r in log)

"""End-to-end integration tests across all subsystems.

These exercise the full paper pipeline — corpus → engine → log → QFG →
recommender → Algorithm 1 → utilities → diversifiers → metrics — on the
shared session fixtures, asserting the cross-module contracts hold.
"""

from __future__ import annotations

import pytest

from repro.core.framework import DiversificationFramework, FrameworkConfig, get_diversifier
from repro.evaluation.metrics import alpha_ndcg, subtopic_recall
from repro.evaluation.runner import evaluate_run


class TestFullPipeline:
    def test_specialization_probabilities_track_ground_truth(
        self, small_corpus, small_miner, small_log
    ):
        """Mined P(q'|q) must correlate with the generator's aspect
        popularity for well-observed topics (Definition 1 end-to-end)."""
        topic = max(
            small_corpus.topics, key=lambda t: small_log.frequency(t.query)
        )
        mined = small_miner.mine(topic.query)
        if len(mined) < 3:
            pytest.skip("head topic not mined richly enough")
        truth = {a.query: a.popularity for a in topic.aspects}
        shared = [q for q in mined.queries if q in truth]
        assert len(shared) >= 2
        mined_order = sorted(shared, key=mined.probability, reverse=True)
        truth_order = sorted(shared, key=truth.__getitem__, reverse=True)
        # The top mined specialization is the true head (or its runner-up).
        assert mined_order[0] in truth_order[:2]

    def test_diversified_run_beats_baseline_on_alpha_ndcg(
        self, small_corpus, small_testbed, small_engine, small_miner
    ):
        """The paper's core effectiveness claim at fixture scale."""
        config = FrameworkConfig(k=10, candidates=80, spec_results=10)
        framework = DiversificationFramework(
            small_engine, small_miner, get_diversifier("optselect"), config
        )
        baseline_run, diversified_run = {}, {}
        for topic in small_testbed.topics:
            baseline_run[topic.topic_id] = small_engine.search(
                topic.query, 10
            ).doc_ids
            result = framework.diversify_query(topic.query)
            diversified_run[topic.topic_id] = (
                result.ranking if result.diversified else baseline_run[topic.topic_id]
            )
        base = evaluate_run(baseline_run, small_testbed, cutoffs=(10,))
        div = evaluate_run(diversified_run, small_testbed, cutoffs=(10,))
        assert div.mean("alpha-ndcg", 10) >= base.mean("alpha-ndcg", 10)

    def test_diversification_improves_subtopic_recall(
        self, small_testbed, small_framework, ambiguous_topic
    ):
        result = small_framework.diversify_query(ambiguous_topic.query)
        assert result.diversified
        k = len(result.ranking)
        recall_div = subtopic_recall(
            result.ranking, ambiguous_topic.topic_id, small_testbed.qrels, cutoff=k
        )
        recall_base = subtopic_recall(
            result.baseline.doc_ids[:k],
            ambiguous_topic.topic_id,
            small_testbed.qrels,
            cutoff=k,
        )
        assert recall_div >= recall_base

    def test_all_algorithms_run_on_every_detected_topic(
        self, small_corpus, small_engine, small_miner
    ):
        config = FrameworkConfig(k=8, candidates=60, spec_results=8)
        for name in ("optselect", "xquad", "iaselect", "mmr"):
            framework = DiversificationFramework(
                small_engine, small_miner, get_diversifier(name), config
            )
            produced = 0
            for topic in small_corpus.topics:
                result = framework.diversify_query(topic.query)
                if result.diversified:
                    produced += 1
                    assert len(result.ranking) <= config.k
            assert produced >= 1, name

    def test_rankings_are_evaluable(
        self, small_testbed, small_framework, ambiguous_topic
    ):
        result = small_framework.diversify_query(ambiguous_topic.query)
        value = alpha_ndcg(
            result.ranking, ambiguous_topic.topic_id, small_testbed.qrels, cutoff=10
        )
        assert 0.0 <= value <= 1.0

    def test_unseen_vocabulary_query_flows_through(self, small_framework):
        result = small_framework.diversify_query("completely unseen words")
        assert not result.diversified
        assert result.ranking == []

    def test_determinism_end_to_end(self, small_framework, ambiguous_topic):
        first = small_framework.diversify_query(ambiguous_topic.query)
        second = small_framework.diversify_query(ambiguous_topic.query)
        assert first.ranking == second.ranking

"""Tests for the TREC-style evaluation runner."""

from __future__ import annotations

import pytest

from repro.corpus.trec import (
    DiversityQrels,
    DiversityTestbed,
    DiversityTopic,
    Subtopic,
)
from repro.evaluation.runner import (
    PAPER_CUTOFFS,
    compare_reports,
    evaluate_run,
)


@pytest.fixture()
def testbed():
    qrels = DiversityQrels()
    qrels.add(1, 1, "d1")
    qrels.add(1, 2, "d2")
    qrels.add(2, 1, "e1")
    topics = [
        DiversityTopic(1, "one", (Subtopic(1), Subtopic(2))),
        DiversityTopic(2, "two", (Subtopic(1),)),
    ]
    return DiversityTestbed(topics=topics, qrels=qrels)


class TestEvaluateRun:
    def test_paper_cutoffs_constant(self):
        assert PAPER_CUTOFFS == (5, 10, 20, 100, 1000)

    def test_reports_both_paper_metrics(self, testbed):
        run = {1: ["d1", "d2"], 2: ["e1"]}
        report = evaluate_run(run, testbed, cutoffs=(5,))
        assert set(report.per_topic) == {"alpha-ndcg", "ia-p"}
        assert report.mean("alpha-ndcg", 5) > 0.0

    def test_perfect_run_alpha_ndcg_one(self, testbed):
        run = {1: ["d1", "d2"], 2: ["e1"]}
        report = evaluate_run(run, testbed, cutoffs=(2,))
        assert report.mean("alpha-ndcg", 2) == pytest.approx(1.0)

    def test_missing_topic_counts_as_zero(self, testbed):
        run = {1: ["d1", "d2"]}  # topic 2 missing
        report = evaluate_run(run, testbed, cutoffs=(2,))
        full = evaluate_run({1: ["d1", "d2"], 2: ["e1"]}, testbed, cutoffs=(2,))
        assert report.mean("alpha-ndcg", 2) < full.mean("alpha-ndcg", 2)

    def test_vector_in_topic_order(self, testbed):
        run = {1: ["d1"], 2: ["e1"]}
        report = evaluate_run(run, testbed, cutoffs=(1,))
        vector = report.vector("alpha-ndcg", 1)
        assert len(vector) == 2

    def test_row_spans_cutoffs(self, testbed):
        run = {1: ["d1", "d2"], 2: ["e1"]}
        report = evaluate_run(run, testbed, cutoffs=(1, 2))
        row = report.row("ia-p", cutoffs=(1, 2))
        assert len(row) == 2

    def test_testbed_probabilities_used_when_requested(self, testbed):
        testbed.subtopic_probabilities = {1: {1: 0.9, 2: 0.1}}
        run = {1: ["d1"], 2: []}
        uniform = evaluate_run(run, testbed, cutoffs=(1,))
        weighted = evaluate_run(
            run, testbed, cutoffs=(1,), use_testbed_probabilities=True
        )
        assert weighted.mean("ia-p", 1) > uniform.mean("ia-p", 1)


class TestCompareReports:
    def test_identical_runs_not_significant(self, testbed):
        run = {1: ["d1"], 2: ["e1"]}
        a = evaluate_run(run, testbed, cutoffs=(5,), name="a")
        b = evaluate_run(run, testbed, cutoffs=(5,), name="b")
        result = compare_reports(a, b, metric="alpha-ndcg", cutoff=5)
        assert not result.significant()

    def test_topic_mismatch_rejected(self, testbed):
        a = evaluate_run({}, testbed, cutoffs=(5,))
        b = evaluate_run({}, testbed, cutoffs=(5,))
        b.topics = [1]
        with pytest.raises(ValueError):
            compare_reports(a, b)

"""Tests for the trec_eval-style CLI."""

from __future__ import annotations

import pytest

from repro.corpus.trec import format_diversity_qrels, format_run, DiversityQrels
from repro.evaluation.cli import evaluate_files, main


@pytest.fixture()
def files(tmp_path):
    qrels = DiversityQrels()
    qrels.add(1, 1, "d1")
    qrels.add(1, 2, "d2")
    qrels.add(2, 1, "e1")
    qrels_path = tmp_path / "qrels.txt"
    qrels_path.write_text(format_diversity_qrels(qrels))

    run_path = tmp_path / "run.txt"
    run_path.write_text(
        format_run({1: [("d1", 2.0), ("d2", 1.0)], 2: [("e1", 1.0)]})
    )
    return str(run_path), str(qrels_path)


class TestEvaluateFiles:
    def test_perfect_run(self, files):
        run_path, qrels_path = files
        results = evaluate_files(run_path, qrels_path, cutoffs=(2,))
        assert results["alpha-ndcg"][2][1] == pytest.approx(1.0)
        assert results["alpha-ndcg"][2][2] == pytest.approx(1.0)

    def test_all_registered_metrics_runnable(self, files):
        run_path, qrels_path = files
        from repro.evaluation.metrics import METRICS

        results = evaluate_files(
            run_path, qrels_path, metrics=tuple(METRICS), cutoffs=(5,)
        )
        for metric in METRICS:
            assert results[metric][5]

    def test_unknown_metric_rejected(self, files):
        run_path, qrels_path = files
        with pytest.raises(ValueError, match="unknown metrics"):
            evaluate_files(run_path, qrels_path, metrics=("bogus",))

    def test_missing_topic_scores_zero(self, tmp_path, files):
        _run_path, qrels_path = files
        empty_run = tmp_path / "empty.txt"
        empty_run.write_text("")
        results = evaluate_files(str(empty_run), qrels_path, cutoffs=(5,))
        assert results["alpha-ndcg"][5][1] == 0.0


class TestMain:
    def test_prints_means(self, files, capsys):
        run_path, qrels_path = files
        assert main([run_path, qrels_path, "--cutoffs", "2"]) == 0
        out = capsys.readouterr().out
        assert "alpha-ndcg@2\tall\t1.0000" in out
        assert "ia-p@2\tall\t" in out

    def test_per_topic_flag(self, files, capsys):
        run_path, qrels_path = files
        main([run_path, qrels_path, "--cutoffs", "2", "--per-topic"])
        out = capsys.readouterr().out
        assert "alpha-ndcg@2\t1\t" in out
        assert "alpha-ndcg@2\t2\t" in out

    def test_alpha_flag(self, files, capsys):
        run_path, qrels_path = files
        main([run_path, qrels_path, "--cutoffs", "2", "--alpha", "0.0"])
        out = capsys.readouterr().out
        assert "alpha-ndcg@2\tall\t" in out

    def test_metric_selection(self, files, capsys):
        run_path, qrels_path = files
        main([run_path, qrels_path, "--metric", "s-recall", "--cutoffs", "2"])
        out = capsys.readouterr().out
        assert "s-recall@2\tall\t1.0000" in out
        assert "alpha-ndcg" not in out

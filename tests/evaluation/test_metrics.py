"""Tests for the diversity evaluation metrics."""

from __future__ import annotations

import pytest

from repro.corpus.trec import DiversityQrels
from repro.evaluation.metrics import (
    alpha_ndcg,
    average_precision,
    err_ia,
    ia_map,
    ia_mrr,
    ia_ndcg,
    intent_aware_precision,
    ndcg,
    precision_at,
    reciprocal_rank,
    subtopic_recall,
)


@pytest.fixture()
def qrels():
    """Topic 1 with two subtopics: s1 = {d1, d2, d3}, s2 = {d4, d5}."""
    q = DiversityQrels()
    for doc in ("d1", "d2", "d3"):
        q.add(1, 1, doc)
    for doc in ("d4", "d5"):
        q.add(1, 2, doc)
    return q


class TestAlphaNDCG:
    def test_perfect_diversified_ranking_scores_one(self, qrels):
        # Greedy-ideal order: alternate subtopics.
        ranking = ["d1", "d4", "d2", "d5", "d3"]
        assert alpha_ndcg(ranking, 1, qrels, cutoff=5) == pytest.approx(1.0)

    def test_redundant_ranking_scores_below_diverse(self, qrels):
        diverse = ["d1", "d4", "d2"]
        redundant = ["d1", "d2", "d3"]
        assert alpha_ndcg(diverse, 1, qrels, cutoff=3) > alpha_ndcg(
            redundant, 1, qrels, cutoff=3
        )

    def test_irrelevant_ranking_zero(self, qrels):
        assert alpha_ndcg(["x", "y"], 1, qrels, cutoff=2) == 0.0

    def test_empty_ranking_zero(self, qrels):
        assert alpha_ndcg([], 1, qrels, cutoff=10) == 0.0

    def test_unjudged_topic_zero(self, qrels):
        assert alpha_ndcg(["d1"], 99, qrels, cutoff=5) == 0.0

    def test_alpha_zero_equals_binary_ndcg(self, qrels):
        ranking = ["d1", "d2", "x", "d4"]
        assert alpha_ndcg(ranking, 1, qrels, alpha=0.0, cutoff=4) == (
            pytest.approx(ndcg(ranking, 1, qrels, cutoff=4))
        )

    def test_novelty_discount_applied(self, qrels):
        # Second doc of the same subtopic contributes (1-α) = 0.5 gain.
        only_s1 = alpha_ndcg(["d1", "d2"], 1, qrels, cutoff=2)
        mixed = alpha_ndcg(["d1", "d4"], 1, qrels, cutoff=2)
        assert mixed > only_s1

    def test_cutoff_validation(self, qrels):
        with pytest.raises(ValueError):
            alpha_ndcg(["d1"], 1, qrels, cutoff=0)

    def test_alpha_validation(self, qrels):
        with pytest.raises(ValueError):
            alpha_ndcg(["d1"], 1, qrels, alpha=-0.1)

    def test_bounded_by_one(self, qrels):
        for ranking in (["d1", "d2", "d4"], ["d4", "d5", "d1"], ["d3"]):
            assert 0.0 <= alpha_ndcg(ranking, 1, qrels, cutoff=3) <= 1.0 + 1e-9

    def test_multi_subtopic_document(self):
        q = DiversityQrels()
        q.add(1, 1, "multi")
        q.add(1, 2, "multi")
        q.add(1, 1, "single")
        # 'multi' covers both subtopics at once → ideal first pick.
        assert alpha_ndcg(["multi"], 1, q, cutoff=1) == pytest.approx(1.0)
        assert alpha_ndcg(["single"], 1, q, cutoff=1) < 1.0


class TestIntentAwarePrecision:
    def test_uniform_weights(self, qrels):
        # top-2 = d1 (s1), d4 (s2): each subtopic has 1 hit in 2 slots.
        value = intent_aware_precision(["d1", "d4"], 1, qrels, cutoff=2)
        assert value == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)

    def test_probability_weighting(self, qrels):
        value = intent_aware_precision(
            ["d1", "d2"], 1, qrels, cutoff=2, probabilities={1: 0.9, 2: 0.1}
        )
        assert value == pytest.approx(0.9 * 1.0 + 0.1 * 0.0)

    def test_unjudged_topic_zero(self, qrels):
        assert intent_aware_precision(["d1"], 77, qrels) == 0.0

    def test_deep_cutoff_dilutes(self, qrels):
        shallow = intent_aware_precision(["d1", "d4"], 1, qrels, cutoff=2)
        deep = intent_aware_precision(["d1", "d4"], 1, qrels, cutoff=10)
        assert deep < shallow

    def test_cutoff_validation(self, qrels):
        with pytest.raises(ValueError):
            intent_aware_precision(["d1"], 1, qrels, cutoff=0)


class TestClassicMetrics:
    def test_precision_at(self, qrels):
        assert precision_at(["d1", "x", "d4", "y"], 1, qrels, cutoff=4) == 0.5

    def test_average_precision_perfect(self, qrels):
        ranking = ["d1", "d2", "d3", "d4", "d5"]
        assert average_precision(ranking, 1, qrels) == pytest.approx(1.0)

    def test_average_precision_zero(self, qrels):
        assert average_precision(["x", "y"], 1, qrels) == 0.0

    def test_reciprocal_rank(self, qrels):
        assert reciprocal_rank(["x", "d4"], 1, qrels) == 0.5
        assert reciprocal_rank(["x", "y"], 1, qrels) == 0.0

    def test_ndcg_perfect_prefix(self, qrels):
        assert ndcg(["d1", "d2"], 1, qrels, cutoff=2) == pytest.approx(1.0)


class TestIntentAwareFamily:
    def test_ia_ndcg_prefers_covering_popular_intent(self, qrels):
        probs = {1: 0.9, 2: 0.1}
        s1_ranking = ["d1", "d2"]
        s2_ranking = ["d4", "d5"]
        assert ia_ndcg(s1_ranking, 1, qrels, cutoff=2, probabilities=probs) > (
            ia_ndcg(s2_ranking, 1, qrels, cutoff=2, probabilities=probs)
        )

    def test_ia_map_bounded(self, qrels):
        value = ia_map(["d1", "d4", "d2", "d5", "d3"], 1, qrels)
        assert 0.0 < value <= 1.0

    def test_ia_mrr_perfect_when_all_intents_hit_first(self):
        q = DiversityQrels()
        q.add(1, 1, "both")
        q.add(1, 2, "both")
        assert ia_mrr(["both"], 1, q) == pytest.approx(1.0)

    def test_ia_mrr_weighted_by_first_hits(self, qrels):
        value = ia_mrr(["d1", "d4"], 1, qrels)
        assert value == pytest.approx(0.5 * 1.0 + 0.5 * 0.5)


class TestErrIA:
    def test_early_hit_beats_late_hit(self, qrels):
        assert err_ia(["d1", "x"], 1, qrels) > err_ia(["x", "d1"], 1, qrels)

    def test_cascade_discount(self, qrels):
        one_hit = err_ia(["d1"], 1, qrels)
        two_hits = err_ia(["d1", "d2"], 1, qrels)
        # second same-intent hit adds less than the first.
        assert two_hits - one_hit < one_hit

    def test_zero_for_irrelevant(self, qrels):
        assert err_ia(["x", "y"], 1, qrels) == 0.0


class TestSubtopicRecall:
    def test_full_coverage(self, qrels):
        assert subtopic_recall(["d1", "d4"], 1, qrels, cutoff=2) == 1.0

    def test_partial_coverage(self, qrels):
        assert subtopic_recall(["d1", "d2"], 1, qrels, cutoff=2) == 0.5

    def test_unjudged_topic(self, qrels):
        assert subtopic_recall(["d1"], 42, qrels) == 0.0

"""Tests for the Wilcoxon signed-rank test, cross-checked against scipy."""

from __future__ import annotations

import random

import pytest
import scipy.stats

from repro.evaluation.significance import (
    paired_differences,
    wilcoxon_signed_rank,
)


class TestPairedDifferences:
    def test_elementwise(self):
        assert paired_differences([3, 2], [1, 2]) == [2, 0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_differences([1], [1, 2])


class TestWilcoxon:
    def test_identical_samples_not_significant(self):
        result = wilcoxon_signed_rank([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0
        assert result.n == 0
        assert not result.significant()

    def test_clear_difference_significant(self):
        a = [float(i) for i in range(1, 21)]
        b = [x - 5.0 for x in a]
        result = wilcoxon_signed_rank(a, b)
        assert result.significant(0.05)
        assert result.w_minus == 0.0

    def test_statistic_is_min_of_sums(self):
        a = [5.0, 1.0, 4.0, 6.0]
        b = [1.0, 2.0, 1.0, 1.0]
        result = wilcoxon_signed_rank(a, b)
        assert result.statistic == min(result.w_plus, result.w_minus)
        assert result.w_plus + result.w_minus == pytest.approx(
            result.n * (result.n + 1) / 2
        )

    def test_alternative_validation(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [0.0], alternative="sideways")

    def test_one_sided_directions(self):
        rng = random.Random(4)
        a = [rng.random() + 0.4 for _ in range(30)]
        b = [rng.random() for _ in range(30)]
        greater = wilcoxon_signed_rank(a, b, alternative="greater")
        less = wilcoxon_signed_rank(a, b, alternative="less")
        assert greater.p_value < 0.05
        assert less.p_value > 0.5

    def test_symmetry_of_two_sided(self):
        rng = random.Random(9)
        a = [rng.random() for _ in range(25)]
        b = [rng.random() for _ in range(25)]
        assert wilcoxon_signed_rank(a, b).p_value == pytest.approx(
            wilcoxon_signed_rank(b, a).p_value
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_scipy_normal_approximation(self, seed):
        rng = random.Random(seed)
        n = 40
        a = [rng.gauss(0.0, 1.0) for _ in range(n)]
        b = [x + rng.gauss(0.15, 0.5) for x in a]
        ours = wilcoxon_signed_rank(a, b)
        theirs = scipy.stats.wilcoxon(
            a, b, zero_method="wilcox", correction=True,
            alternative="two-sided", mode="approx",
        )
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_matches_scipy_with_ties(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        b = [0.0, 1.0, 2.0, 5.0, 4.0, 5.0, 8.0, 7.0]  # ties in |diff|
        ours = wilcoxon_signed_rank(a, b)
        theirs = scipy.stats.wilcoxon(
            a, b, zero_method="wilcox", correction=True,
            alternative="two-sided", mode="approx",
        )
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_paper_usage_pattern(self):
        """Per-topic metric vectors that barely differ → not significant
        (the paper's conclusion for OptSelect vs xQuAD)."""
        rng = random.Random(7)
        base = [rng.random() * 0.4 for _ in range(50)]
        jitter = [x + rng.gauss(0.0, 0.01) for x in base]
        result = wilcoxon_signed_rank(base, jitter)
        assert not result.significant(0.05)

"""Tests for OptSelect (Algorithm 2)."""

from __future__ import annotations

import math

import pytest

from repro.core.objectives import (
    coverage_counts,
    max_utility_objective,
    satisfies_proportionality,
)
from repro.core.optselect import OptSelect

from .helpers import build_task, two_intent_task


class TestBasicBehaviour:
    def test_returns_k_documents(self):
        task = two_intent_task()
        assert len(OptSelect().diversify(task, 5)) == 5

    def test_k_capped_at_n(self):
        task = two_intent_task()
        assert len(OptSelect().diversify(task, 100)) == task.n

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            OptSelect().diversify(two_intent_task(), 0)

    def test_no_duplicates(self):
        selected = OptSelect().diversify(two_intent_task(), 8)
        assert len(selected) == len(set(selected))

    def test_selection_from_candidates_only(self):
        task = two_intent_task()
        assert set(OptSelect().diversify(task, 8)) <= set(task.candidates.doc_ids)

    def test_deterministic(self):
        task = two_intent_task()
        assert OptSelect().diversify(task, 5) == OptSelect().diversify(task, 5)


class TestCoverage:
    def test_both_intents_covered_early(self):
        task = two_intent_task()
        top4 = OptSelect().diversify(task, 4)
        assert any(d.startswith("a") for d in top4)
        assert any(d.startswith("b") for d in top4)

    def test_first_slots_follow_probability_order(self):
        task = two_intent_task()
        selected = OptSelect().diversify(task, 6)
        # Phase 1 pops the dominant specialization first.
        assert selected[0].startswith("a")
        assert selected[1].startswith("b")

    def test_proportionality_constraint_met(self):
        task = two_intent_task()
        k = 6
        selected = OptSelect().diversify(task, k)
        assert satisfies_proportionality(task, selected, k)

    def test_minority_not_over_covered(self):
        task = two_intent_task()
        selected = OptSelect().diversify(task, 6)
        counts = coverage_counts(task, selected)
        # quota for B is floor(6·0.25)+1 = 2
        assert counts["q B"] <= 2

    def test_junk_only_fills_leftover_slots(self):
        task = two_intent_task()
        selected = OptSelect().diversify(task, 8)
        junk_positions = [selected.index(d) for d in ("junk1", "junk2")]
        assert min(junk_positions) >= 6


class TestObjectiveOptimality:
    def test_unconstrained_matches_topk_of_overall_utility(self):
        """With one specialization covering everything, OptSelect must
        return exactly the top-k by Ũ(d|q) (the Eq. 8 maximiser)."""
        scores = [(f"d{i}", 10.0 - i) for i in range(6)]
        utilities = {"q X": {f"d{i}": 0.9 - 0.1 * i for i in range(6)}}
        task = build_task(utilities, {"q X": 1.0}, scores, lambda_=0.5)
        k = 3
        selected = OptSelect().diversify(task, k)
        by_overall = sorted(
            task.candidates.doc_ids,
            key=lambda d: -task.overall_utility(d),
        )[:k]
        assert set(selected) == set(by_overall)
        assert max_utility_objective(task, selected) == pytest.approx(
            max_utility_objective(task, by_overall)
        )

    def test_objective_beats_other_constraint_satisfying_sets(self):
        """The baseline top-4 {a1..a4} violates the coverage constraint;
        among constraint-satisfying sets OptSelect's pick must be at least
        as good as a hand-built alternative."""
        task = two_intent_task()
        k = 4
        selected = OptSelect().diversify(task, k)
        assert satisfies_proportionality(task, selected, k)
        alternative = ["a1", "a3", "a4", "b1"]  # also covers both intents
        assert satisfies_proportionality(task, alternative, k)
        assert max_utility_objective(task, selected) >= max_utility_objective(
            task, alternative
        ) - 1e-9


class TestThresholdDegradation:
    def test_all_utilities_zeroed_returns_baseline_order(self):
        task = two_intent_task().with_threshold(0.95)
        selected = OptSelect().diversify(task, 5)
        assert selected == task.candidates.doc_ids[:5]


class TestStrictPseudocode:
    def test_strict_mode_covers_each_spec_once(self):
        task = two_intent_task()
        selected = OptSelect(strict_paper_pseudocode=True).diversify(task, 6)
        assert any(d.startswith("a") for d in selected)
        assert any(d.startswith("b") for d in selected)

    def test_strict_mode_may_return_fewer_than_k(self):
        # Every doc is useful for some spec → general heap M stays empty →
        # strict mode can only return one doc per specialization.
        scores = [("x1", 3.0), ("x2", 2.0), ("y1", 1.0)]
        utilities = {"q X": {"x1": 0.9, "x2": 0.8}, "q Y": {"y1": 0.9}}
        task = build_task(utilities, {"q X": 1.0, "q Y": 1.0}, scores)
        selected = OptSelect(strict_paper_pseudocode=True).diversify(task, 3)
        assert len(selected) == 2

    def test_default_mode_fills_to_k(self):
        scores = [("x1", 3.0), ("x2", 2.0), ("y1", 1.0)]
        utilities = {"q X": {"x1": 0.9, "x2": 0.8}, "q Y": {"y1": 0.9}}
        task = build_task(utilities, {"q X": 1.0, "q Y": 1.0}, scores)
        assert len(OptSelect().diversify(task, 3)) == 3


class TestInstrumentation:
    def test_heap_pushes_bounded_by_n_times_specs(self):
        task = two_intent_task()
        algo = OptSelect()
        algo.diversify(task, 4)
        stats = algo.last_stats
        assert 0 < stats.heap_pushes <= task.n * len(task.specializations)
        assert stats.operations == stats.heap_pushes
        assert stats.selected == 4

    def test_ops_independent_of_k(self):
        from repro.experiments.workloads import synthetic_task

        task = synthetic_task(500, num_specs=4, seed=3)
        algo = OptSelect()
        algo.diversify(task, 10)
        ops_small_k = algo.last_stats.operations
        algo.diversify(task, 200)
        ops_large_k = algo.last_stats.operations
        assert ops_small_k == ops_large_k


class TestManySpecializations:
    def test_specs_capped_at_k(self):
        utilities = {f"q s{i}": {f"d{i}": 0.9} for i in range(10)}
        scores = [(f"d{i}", 10.0 - i) for i in range(10)]
        probabilities = {f"q s{i}": 10.0 - i for i in range(10)}
        task = build_task(utilities, probabilities, scores)
        selected = OptSelect().diversify(task, 3)
        assert len(selected) == 3

    def test_quota_formula(self):
        # quota = floor(k · P) + 1 — check via coverage counts.
        task = two_intent_task()
        k = 8
        selected = OptSelect().diversify(task, k)
        counts = coverage_counts(task, selected)
        p_a = task.specializations.probability("q A")
        assert counts["q A"] <= math.floor(k * p_a) + 1

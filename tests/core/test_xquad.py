"""Tests for the xQuAD greedy algorithm."""

from __future__ import annotations

import pytest

from repro.core.objectives import xquad_step_score
from repro.core.xquad import XQuAD

from .helpers import build_task, two_intent_task


class TestBasicBehaviour:
    def test_returns_k_documents(self):
        assert len(XQuAD().diversify(two_intent_task(), 5)) == 5

    def test_k_capped_at_n(self):
        task = two_intent_task()
        assert len(XQuAD().diversify(task, 100)) == task.n

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            XQuAD().diversify(two_intent_task(), 0)

    def test_no_duplicates(self):
        selected = XQuAD().diversify(two_intent_task(), 8)
        assert len(selected) == len(set(selected))

    def test_deterministic(self):
        task = two_intent_task()
        assert XQuAD().diversify(task, 6) == XQuAD().diversify(task, 6)


class TestGreedySemantics:
    def test_each_pick_maximises_equation_5(self):
        """Replay the greedy and verify every pick against the reference
        implementation of Eq. (5) in the objectives module."""
        task = two_intent_task()
        selected = XQuAD().diversify(task, 5)
        chosen: list[str] = []
        for pick in selected:
            best = max(
                (d for d in task.candidates.doc_ids if d not in chosen),
                key=lambda d: (
                    xquad_step_score(task, chosen, d),
                    -task.candidates.rank_of(d),
                ),
            )
            assert pick == best
            chosen.append(pick)

    def test_relevance_anchors_ranking(self):
        # With lambda = 0 xQuAD is pure relevance: baseline order.
        task = two_intent_task().with_lambda(0.0)
        assert XQuAD().diversify(task, 5) == task.candidates.doc_ids[:5]

    def test_pure_diversity_mode(self):
        # With lambda = 1 the relevance term vanishes; the first two picks
        # must cover both intents (coverage decays after each pick).
        task = two_intent_task().with_lambda(1.0)
        selected = XQuAD().diversify(task, 2)
        assert {selected[0][0], selected[1][0]} == {"a", "b"}

    def test_diversity_promotes_minority_intent(self):
        task = two_intent_task(lambda_=0.5)
        selected = XQuAD().diversify(task, 4)
        assert any(d.startswith("b") for d in selected)

    def test_zero_utilities_degrade_to_baseline(self):
        task = two_intent_task().with_threshold(0.95)
        assert XQuAD().diversify(task, 5) == task.candidates.doc_ids[:5]

    def test_junk_never_precedes_covered_relevant_docs(self):
        task = two_intent_task(lambda_=0.5)
        selected = XQuAD().diversify(task, 8)
        assert selected.index("junk1") > selected.index("a1")
        assert selected.index("junk1") > selected.index("b1")


class TestCoverageSaturation:
    def test_coverage_decay_demotes_covered_intent(self):
        utilities = {
            "q A": {"a1": 0.95, "a2": 0.95},
            "q B": {"b1": 0.4},
        }
        scores = [("a1", 3.0), ("a2", 2.9), ("b1", 1.0)]
        task = build_task(utilities, {"q A": 2.0, "q B": 1.0}, scores, lambda_=1.0)
        selected = XQuAD().diversify(task, 2)
        # After a1, intent A is ~saturated (1−0.95 residual); b1's fresh
        # 0.33·0.4 beats a2's 0.67·0.95·0.05.
        assert selected == ["a1", "b1"]


class TestInstrumentation:
    def test_operations_scale_with_k(self):
        task = two_intent_task()
        algo = XQuAD()
        algo.diversify(task, 2)
        ops_small = algo.last_stats.operations
        algo.diversify(task, 6)
        assert algo.last_stats.operations > ops_small

    def test_operation_count_formula(self):
        task = two_intent_task()
        algo = XQuAD()
        k = 4
        algo.diversify(task, k)
        n, m = task.n, len(task.specializations)
        expected = sum(m * (n - i) for i in range(k))
        assert algo.last_stats.operations == expected

"""Tests for personalized diversification (future-work item i)."""

from __future__ import annotations

import pytest

from repro.core.ambiguity import SpecializationSet
from repro.core.personalized import PersonalizedDetector, UserProfile
from repro.querylog.records import QueryLog, QueryRecord


class _StaticDetector:
    """A stand-in global Algorithm 1 with a fixed answer."""

    def __init__(self, items):
        self._items = items

    def mine(self, query):
        return SpecializationSet(query=query, items=self._items)


GLOBAL = _StaticDetector(
    (("apple iphone", 0.6), ("apple fruit", 0.3), ("apple tree", 0.1))
)


class TestUserProfile:
    def test_from_log(self):
        log = QueryLog(
            [
                QueryRecord(1.0, "u1", "apple fruit", clicks=("d1", "d2")),
                QueryRecord(2.0, "u1", "apple fruit"),
                QueryRecord(3.0, "u2", "apple iphone"),
            ]
        )
        profile = UserProfile.from_log(log, "u1")
        assert profile.query_counts["apple fruit"] == 2
        assert profile.click_counts["apple fruit"] == 2
        assert profile.total_queries == 2

    def test_observe_online(self):
        profile = UserProfile("u")
        profile.observe("apple fruit", clicks=1)
        profile.observe("apple fruit")
        assert profile.affinity("apple fruit", click_weight=2.0) == 4.0

    def test_affinity_unknown_query_zero(self):
        assert UserProfile("u").affinity("nope") == 0.0


class TestPersonalizedDetector:
    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            PersonalizedDetector(GLOBAL, gamma=1.5)
        with pytest.raises(ValueError):
            PersonalizedDetector(GLOBAL, click_weight=-1)

    def test_anonymous_user_gets_global(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.9)
        result = detector.detect("apple", user_id=None)
        assert result.probability("apple iphone") == pytest.approx(0.6)

    def test_unknown_user_gets_global(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.9)
        result = detector.detect("apple", user_id="stranger")
        assert result.probability("apple iphone") == pytest.approx(0.6)

    def test_gamma_zero_is_global(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.0)
        detector.profile("u").observe("apple fruit", clicks=5)
        result = detector.detect("apple", user_id="u")
        assert result.probability("apple fruit") == pytest.approx(0.3)

    def test_history_shifts_distribution(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.5)
        for _ in range(10):
            detector.profile("u").observe("apple fruit", clicks=1)
        result = detector.detect("apple", user_id="u")
        assert result.probability("apple fruit") > 0.3
        assert result.probability("apple iphone") < 0.6
        assert sum(p for _, p in result) == pytest.approx(1.0)

    def test_full_personalization_dominated_by_history(self):
        detector = PersonalizedDetector(GLOBAL, gamma=1.0)
        detector.profile("u").observe("apple tree", clicks=3)
        result = detector.detect("apple", user_id="u")
        assert result.queries[0] == "apple tree"

    def test_personalization_never_changes_support(self):
        detector = PersonalizedDetector(GLOBAL, gamma=1.0)
        detector.profile("u").observe("apple tree", clicks=3)
        detector.profile("u").observe("banana bread", clicks=9)  # off-topic
        result = detector.detect("apple", user_id="u")
        assert set(result.queries) == {
            "apple iphone",
            "apple fruit",
            "apple tree",
        }

    def test_user_without_relevant_history_gets_global(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.8)
        detector.profile("u").observe("banana bread")
        result = detector.detect("apple", user_id="u")
        assert result.probability("apple iphone") == pytest.approx(0.6)

    def test_load_history_bulk(self):
        log = QueryLog(
            [
                QueryRecord(1.0, "u7", "apple fruit", clicks=("d",)),
                QueryRecord(2.0, "u8", "apple iphone", clicks=("d",)),
            ]
        )
        detector = PersonalizedDetector(GLOBAL, gamma=1.0)
        detector.load_history(log)
        fruit_fan = detector.detect("apple", user_id="u7")
        phone_fan = detector.detect("apple", user_id="u8")
        assert fruit_fan.queries[0] == "apple fruit"
        assert phone_fan.queries[0] == "apple iphone"

    def test_mine_protocol_for_framework(self):
        detector = PersonalizedDetector(GLOBAL, gamma=0.9)
        assert detector.mine("apple").probability("apple iphone") == (
            pytest.approx(0.6)
        )

    def test_empty_global_result_passthrough(self):
        detector = PersonalizedDetector(
            _StaticDetector(()), gamma=0.5
        )
        detector.profile("u").observe("apple fruit")
        assert not detector.detect("apple", user_id="u")

    def test_works_with_real_miner(self, small_miner, small_corpus, small_log):
        topic = max(
            small_corpus.topics, key=lambda t: small_log.frequency(t.query)
        )
        global_result = small_miner.mine(topic.query)
        if len(global_result) < 2:
            pytest.skip("head topic not mined")
        detector = PersonalizedDetector(small_miner, gamma=1.0)
        tail_spec = global_result.queries[-1]
        detector.profile("fan").observe(tail_spec, clicks=10)
        personal = detector.detect(topic.query, user_id="fan")
        assert personal.queries[0] == tail_spec

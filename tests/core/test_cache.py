"""Unit tests for the bounded LRU cache."""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.cache import LRUCache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now stalest
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update refreshes "a"
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_size_never_exceeds_maxsize(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
            assert len(cache) <= 3
        assert cache.stats().evictions == 7

    def test_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_is_a_pure_probe(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_hit_rate_before_any_lookup(self):
        assert LRUCache(1).stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache
        assert cache.stats().hits == 1

    def test_iteration_orders_lru_first(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert list(cache) == ["b", "c", "a"]

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLRUCacheConcurrency:
    """Hammer a shared cache from a thread pool.

    The serving layer shares caches across threads (the sharded fan-out,
    the engine-level vector cache, and now the async front-end's
    executor dispatch), so the per-operation lock must keep the counters
    *consistent* — every ``get`` is exactly one hit or one miss — and the
    structure uncorrupted, not merely crash-free.
    """

    WORKERS = 8
    OPS_PER_WORKER = 3000
    KEYSPACE = 64

    @staticmethod
    def _value_for(key: int) -> int:
        return key * 1_000_003  # distinct per key: detects cross-entry mixups

    def test_counters_and_entries_survive_a_thread_hammer(self):
        cache: LRUCache[int, int] = LRUCache(32)
        start = threading.Barrier(self.WORKERS)

        def worker(worker_id: int) -> int:
            rng = random.Random(worker_id)
            start.wait()  # maximise overlap: all threads enter together
            gets = 0
            for _ in range(self.OPS_PER_WORKER):
                key = rng.randrange(self.KEYSPACE)
                if rng.random() < 0.5:
                    cache.put(key, self._value_for(key))
                else:
                    value = cache.get(key)
                    gets += 1
                    if value is not None:
                        assert value == self._value_for(key)
            return gets

        with ThreadPoolExecutor(max_workers=self.WORKERS) as pool:
            total_gets = sum(pool.map(worker, range(self.WORKERS)))

        stats = cache.stats()
        # Every get was counted exactly once, as a hit or a miss.
        assert stats.hits + stats.misses == total_gets
        assert stats.size == len(cache) <= cache.maxsize
        assert stats.evictions >= 0
        # No entry corruption: every surviving key maps to its own value.
        for key in cache:
            assert cache.get(key) == self._value_for(key)

    def test_concurrent_eviction_churn_stays_bounded(self):
        """Tiny capacity + wide keyspace: constant eviction pressure must
        never let the cache exceed its bound or lose the LRU invariant's
        bookkeeping (size observed ≤ maxsize at every probe)."""
        cache: LRUCache[int, int] = LRUCache(4)
        observed: list[int] = []
        start = threading.Barrier(4)

        def churner(worker_id: int) -> None:
            rng = random.Random(100 + worker_id)
            start.wait()
            for _ in range(2000):
                key = rng.randrange(256)
                cache.put(key, self._value_for(key))
                observed.append(len(cache))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(churner, range(4)))

        assert max(observed) <= 4
        stats = cache.stats()
        # 8000 puts into 4 slots over a 256-key space: heavy eviction,
        # and every insertion is accounted — inserts = evictions + size.
        assert stats.evictions > 1000
        assert stats.size <= 4

    def test_clear_races_with_traffic(self):
        """clear() under concurrent gets/puts must neither crash nor
        corrupt: afterwards the cache still bounds itself and serves."""
        cache: LRUCache[int, int] = LRUCache(16)
        stop = threading.Event()

        def traffic() -> None:
            rng = random.Random(7)
            while not stop.is_set():
                key = rng.randrange(32)
                cache.put(key, self._value_for(key))
                value = cache.get(key)
                if value is not None:
                    assert value == self._value_for(key)

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(traffic) for _ in range(2)]
            for _ in range(200):
                cache.clear()
            stop.set()
            for future in futures:
                future.result()  # surface assertion failures from threads

        assert len(cache) <= 16
        cache.put(1, self._value_for(1))
        assert cache.get(1) == self._value_for(1)

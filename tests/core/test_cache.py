"""Unit tests for the bounded LRU cache."""

from __future__ import annotations

import pytest

from repro.core.cache import LRUCache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now stalest
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update refreshes "a"
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_size_never_exceeds_maxsize(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
            assert len(cache) <= 3
        assert cache.stats().evictions == 7

    def test_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_is_a_pure_probe(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_hit_rate_before_any_lookup(self):
        assert LRUCache(1).stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache
        assert cache.stats().hits == 1

    def test_iteration_orders_lru_first(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert list(cache) == ["b", "c", "a"]

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)

"""Hand-built and randomized diversification tasks for algorithm tests.

The canonical fixture models the paper's running example: an ambiguous
query with a dominant and a minority interpretation, where the baseline
ranking is biased toward the dominant one.  :func:`random_task` is the
generator behind the randomized cross-implementation identity suite: a
seeded sweep over sizes, λ, thresholds and score/probability/utility
*distributions* — including heavy ties, the regime where a kernel
implementation diverges from its reference first.
"""

from __future__ import annotations

import random

from repro.core.ambiguity import SpecializationSet
from repro.core.task import DiversificationTask
from repro.core.utility import UtilityMatrix
from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector


def build_task(
    utilities: dict[str, dict[str, float]],
    probabilities: dict[str, float],
    scores: list[tuple[str, float]],
    lambda_: float = 0.15,
    relevance_method: str = "sum",
) -> DiversificationTask:
    """Assemble a task from explicit utilities / probabilities / scores."""
    candidates = ResultList("q", scores)
    specializations = SpecializationSet.from_frequencies("q", probabilities)
    matrix = UtilityMatrix(utilities, candidates.doc_ids)
    return DiversificationTask.create(
        query="q",
        candidates=candidates,
        specializations=specializations,
        utilities=matrix,
        lambda_=lambda_,
        relevance_method=relevance_method,
    )


def two_intent_task(lambda_: float = 0.5) -> DiversificationTask:
    """Dominant intent A (p=0.75) vs minority intent B (p=0.25).

    Candidates a1..a4 serve A, b1..b2 serve B, junk1..junk2 serve nobody.
    The baseline score ranks all A docs above all B docs above junk.
    """
    scores = [
        ("a1", 10.0), ("a2", 9.0), ("a3", 8.0), ("a4", 7.0),
        ("b1", 6.0), ("b2", 5.0),
        ("junk1", 4.0), ("junk2", 3.0),
    ]
    utilities = {
        "q A": {"a1": 0.9, "a2": 0.8, "a3": 0.7, "a4": 0.6},
        "q B": {"b1": 0.9, "b2": 0.8},
    }
    probabilities = {"q A": 3.0, "q B": 1.0}
    return build_task(utilities, probabilities, scores, lambda_=lambda_)


def _random_scores(rng: random.Random, n: int) -> list[tuple[str, float]]:
    """Candidate scores under one of several realistic shapes."""
    shape = rng.choice(("inverse_rank", "uniform", "exponential", "tied"))
    doc_ids = [f"d{i:05d}" for i in range(n)]
    if shape == "inverse_rank":
        values = [1.0 / (i + 1) ** 0.5 for i in range(n)]
    elif shape == "uniform":
        values = sorted((rng.random() for _ in range(n)), reverse=True)
    elif shape == "exponential":
        values = [2.0 ** (-i * rng.uniform(0.05, 0.5)) for i in range(n)]
    else:  # heavy score ties: the tie-break torture case
        levels = [round(rng.random(), 1) for _ in range(max(1, n // 5))]
        values = sorted((rng.choice(levels) for _ in range(n)), reverse=True)
    return list(zip(doc_ids, values))


def _random_probabilities(
    rng: random.Random, num_specs: int
) -> dict[str, float]:
    """Specialization frequencies under one of several shapes."""
    shape = rng.choice(("zipf", "uniform", "dominant", "random"))
    if shape == "zipf":
        weights = [1.0 / (j + 1) for j in range(num_specs)]
    elif shape == "uniform":
        weights = [1.0] * num_specs
    elif shape == "dominant":
        weights = [10.0] + [rng.uniform(0.1, 1.0) for _ in range(num_specs - 1)]
    else:
        weights = [rng.uniform(0.1, 5.0) for _ in range(num_specs)]
    return {f"q spec{j}": weights[j] for j in range(num_specs)}


def random_task(seed: int) -> tuple[DiversificationTask, int]:
    """A seeded random (task, k) pair for the identity sweep.

    Varies every axis the kernels specialise on: candidate count, number
    of specializations (sometimes > k), utility density and value
    distribution (including constant utilities — pure tie-breaking), λ
    across [0, 1] inclusive of the extremes, the threshold *c*, and the
    score curve.  Sparse surrogate vectors are always attached so MMR
    runs on every generated task.
    """
    rng = random.Random(seed)
    utility_shape = rng.choice(("uniform", "heavy_tail", "binary"))
    if utility_shape == "binary":
        # The tie-torture regime: identical 0.5 utilities make documents
        # with *different* coverage patterns tie exactly.  Everything is
        # kept a (sum of few) power(s) of two — uniform probabilities
        # over 1/2/4/8 specializations, bounded selection depth — so all
        # scores are exactly representable and both implementations
        # compute bit-identical floats.  Ties are then decided purely by
        # the documented baseline-rank rule, not by floating-point
        # summation-order noise (which no implementation pair can agree
        # on for mathematically-tied-but-differently-summed scores).
        n = rng.randint(5, 40)
        num_specs = rng.choice((1, 2, 4, 8))
        k = rng.randint(1, 20)
        probabilities = {f"q spec{j}": 1.0 for j in range(num_specs)}
    else:
        n = rng.randint(5, 120)
        num_specs = rng.randint(1, 12)
        k = rng.randint(1, n + 5)  # occasionally > n: exercises capping
        probabilities = _random_probabilities(rng, num_specs)
    lambda_ = rng.choice((0.0, 1.0, rng.random(), rng.random()))
    density = rng.uniform(0.05, 0.9)
    scores = _random_scores(rng, n)
    doc_ids = [doc_id for doc_id, _ in scores]

    utilities: dict[str, dict[str, float]] = {}
    for spec in probabilities:
        row: dict[str, float] = {}
        for doc_id in doc_ids:
            if rng.random() >= density:
                continue
            if utility_shape == "uniform":
                row[doc_id] = rng.random()
            elif utility_shape == "heavy_tail":
                row[doc_id] = rng.random() ** 3
            else:  # identical utilities: selection is all tie-breaking
                row[doc_id] = 0.5
        utilities[spec] = row

    candidates = ResultList("q", scores)
    specializations = SpecializationSet.from_frequencies("q", probabilities)
    matrix = UtilityMatrix(utilities, doc_ids)
    if rng.random() < 0.3:
        matrix = matrix.with_threshold(round(rng.uniform(0.1, 0.7), 2))
    task = DiversificationTask.create(
        query="q",
        candidates=candidates,
        specializations=specializations,
        utilities=matrix,
        lambda_=lambda_,
        relevance_method=rng.choice(("sum", "minmax", "softmax", "reciprocal")),
    )
    vocabulary = [f"term{t}" for t in range(30)]
    task.vectors = {
        doc_id: TermVector(
            {
                term: rng.random()
                for term in rng.sample(vocabulary, rng.randint(0, 6))
            }
        )
        for doc_id in doc_ids
    }
    return task, k

"""Hand-built diversification tasks for algorithm unit tests.

The canonical fixture models the paper's running example: an ambiguous
query with a dominant and a minority interpretation, where the baseline
ranking is biased toward the dominant one.
"""

from __future__ import annotations

from repro.core.ambiguity import SpecializationSet
from repro.core.task import DiversificationTask
from repro.core.utility import UtilityMatrix
from repro.retrieval.engine import ResultList


def build_task(
    utilities: dict[str, dict[str, float]],
    probabilities: dict[str, float],
    scores: list[tuple[str, float]],
    lambda_: float = 0.15,
    relevance_method: str = "sum",
) -> DiversificationTask:
    """Assemble a task from explicit utilities / probabilities / scores."""
    candidates = ResultList("q", scores)
    specializations = SpecializationSet.from_frequencies("q", probabilities)
    matrix = UtilityMatrix(utilities, candidates.doc_ids)
    return DiversificationTask.create(
        query="q",
        candidates=candidates,
        specializations=specializations,
        utilities=matrix,
        lambda_=lambda_,
        relevance_method=relevance_method,
    )


def two_intent_task(lambda_: float = 0.5) -> DiversificationTask:
    """Dominant intent A (p=0.75) vs minority intent B (p=0.25).

    Candidates a1..a4 serve A, b1..b2 serve B, junk1..junk2 serve nobody.
    The baseline score ranks all A docs above all B docs above junk.
    """
    scores = [
        ("a1", 10.0), ("a2", 9.0), ("a3", 8.0), ("a4", 7.0),
        ("b1", 6.0), ("b2", 5.0),
        ("junk1", 4.0), ("junk2", 3.0),
    ]
    utilities = {
        "q A": {"a1": 0.9, "a2": 0.8, "a3": 0.7, "a4": 0.6},
        "q B": {"b1": 0.9, "b2": 0.8},
    }
    probabilities = {"q A": 3.0, "q B": 1.0}
    return build_task(utilities, probabilities, scores, lambda_=lambda_)

"""Pickle round-trips of the serving stack's travelling types.

The process execution backend (:mod:`repro.serving.backends`) ships
configs, specialization sets, tasks, results, caches and stats
dataclasses across OS process boundaries; everything the workers send or
receive must survive ``pickle.dumps``/``loads`` *semantically intact*.
These tests pin that contract type by type, so a future field (a lock, a
lambda, an open handle) cannot silently break process-parallel serving.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.ambiguity import SpecializationSet
from repro.core.cache import CacheStats, LRUCache
from repro.core.framework import FrameworkConfig
from repro.experiments.workloads import synthetic_task
from repro.querylog.specializations import MinerConfig
from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector
from repro.serving.service import ServiceStats, WarmReport


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigs:
    def test_framework_config(self):
        config = FrameworkConfig(
            k=25, candidates=500, spec_results=15, lambda_=0.3, threshold=0.1
        )
        assert roundtrip(config) == config

    def test_miner_config(self):
        config = MinerConfig(s=4.0, candidates=12, max_specializations=6)
        assert roundtrip(config) == config


class TestSpecTypes:
    def test_specialization_set(self):
        specs = SpecializationSet.from_frequencies(
            "apple", {"apple iphone": 30, "apple fruit": 10}
        )
        loaded = roundtrip(specs)
        assert loaded == specs
        assert loaded.probability("apple iphone") == 0.75

    def test_result_list(self):
        results = ResultList("q", [("d1", 2.5), ("d2", 1.25)])
        loaded = roundtrip(results)
        assert loaded.doc_ids == results.doc_ids
        assert loaded.scores == results.scores
        assert loaded.rank_of("d2") == 2

    def test_term_vector_weights_exact(self):
        vector = TermVector({"apple": 2.0, "fruit": 1.0, "tree": 0.5})
        loaded = roundtrip(vector)
        assert loaded.weights == vector.weights
        assert loaded.norm == vector.norm


class TestTask:
    def test_task_roundtrip_preserves_selection_inputs(self):
        task = synthetic_task(32, num_specs=4, with_vectors=True)
        loaded = roundtrip(task)
        assert loaded.query == task.query
        assert loaded.candidates.doc_ids == task.candidates.doc_ids
        assert loaded.specializations == task.specializations
        assert loaded.relevance == task.relevance
        assert loaded.lambda_ == task.lambda_
        for doc_id, vector in task.vectors.items():
            assert loaded.vectors[doc_id].weights == vector.weights
        for doc_id in task.candidates.doc_ids:
            for spec, _ in task.specializations:
                assert loaded.utilities.value(doc_id, spec) == task.utilities.value(
                    doc_id, spec
                )

    def test_task_drops_dense_memo_and_rebuilds(self):
        numpy = pytest.importorskip("numpy")
        task = synthetic_task(16, num_specs=3)
        arrays = task.arrays()  # build the memo
        loaded = roundtrip(task)
        assert loaded._arrays is None  # not shipped
        rebuilt = loaded.arrays()  # lazily rebuilt on demand
        numpy.testing.assert_array_equal(rebuilt.relevance, arrays.relevance)
        numpy.testing.assert_array_equal(rebuilt.utilities, arrays.utilities)

    def test_selection_identical_after_roundtrip(self):
        from repro.core.optselect import OptSelect

        task = synthetic_task(48, num_specs=5, seed=11)
        want = OptSelect().diversify(task, 10)
        assert OptSelect().diversify(roundtrip(task), 10) == want


class TestCache:
    def test_lru_roundtrip_preserves_entries_counters_and_order(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")       # refresh a; b is now LRU
        cache.get("missing")  # one miss
        cache.put("d", 4)    # evicts b
        loaded = roundtrip(cache)
        assert loaded.stats() == cache.stats()
        assert list(loaded) == list(cache)  # recency order intact
        assert "b" not in loaded
        # The restored lock is live: operations keep working.
        loaded.put("e", 5)
        assert loaded.stats().evictions == cache.stats().evictions + 1

    def test_cache_stats(self):
        stats = CacheStats(maxsize=8, size=3, hits=5, misses=2, evictions=1)
        assert roundtrip(stats) == stats


class TestStatsDataclasses:
    def test_service_stats_with_samples_and_breakdown(self):
        shard = ServiceStats(served=3, ranked=2, seconds=0.5, name="shard0")
        shard.latencies_ms.extend([1.0, 2.0])
        shard.record_formation(2, [0.5, 0.75], queue_depth=4)
        merged = ServiceStats.merge([shard, ServiceStats(name="shard1")])
        loaded = roundtrip(merged)
        assert loaded.served == merged.served
        assert list(loaded.latencies_ms) == list(merged.latencies_ms)
        assert loaded.batch_sizes == merged.batch_sizes
        assert list(loaded.wait_ms) == list(merged.wait_ms)
        assert loaded.queue_depth_peak == merged.queue_depth_peak
        assert [s.name for s in loaded.shards] == ["shard0", "shard1"]
        assert loaded.summary() == merged.summary()

    def test_warm_report_nested(self):
        leaf = [
            WarmReport(2, 1, 3, 3, 0.1, name=f"shard{i}") for i in range(2)
        ]
        merged = WarmReport.merge(leaf)
        loaded = roundtrip(merged)
        assert loaded == merged
        assert loaded.busy_seconds == pytest.approx(0.2)
        assert [r.name for r in loaded.shards] == ["shard0", "shard1"]

    def test_build_report_nested(self):
        """Build reports travel back from process-backend build workers
        exactly like warm reports travel back from serving workers."""
        from repro.retrieval.sharding import BuildReport

        leaf = [
            BuildReport(
                documents=5, terms=9, postings=12, tokens=30, seconds=0.2,
                postings_bytes=1024, vocabulary_bytes=512,
                documents_bytes=256, name=f"partition{i}",
            )
            for i in range(2)
        ]
        merged = BuildReport.merge(leaf)
        loaded = roundtrip(merged)
        assert loaded == merged
        assert loaded.busy_seconds == pytest.approx(0.4)
        assert loaded.total_bytes == merged.total_bytes
        assert [r.name for r in loaded.shards] == ["partition0", "partition1"]

    def test_inverted_index_roundtrip_scores_identically(self, small_corpus):
        """The parallel build ships whole partition indexes across the
        process boundary; an unpickled index must score byte-identically
        (postings, lengths, statistics all intact)."""
        import pickle

        from repro.retrieval.engine import SearchEngine
        from repro.retrieval.index import InvertedIndex

        index = InvertedIndex.from_collection(small_corpus.collection)
        loaded = pickle.loads(pickle.dumps(index))
        assert loaded.num_documents == index.num_documents
        assert loaded.num_terms == index.num_terms
        assert loaded.total_tokens == index.total_tokens
        # The estimate prices the actual containers, and unpickled lists
        # carry no append-growth slack — so the clone reads slightly
        # *smaller*, never structurally different.
        assert loaded.memory_estimate()["total_bytes"] == pytest.approx(
            index.memory_estimate()["total_bytes"], rel=0.1
        )
        engine = SearchEngine(small_corpus.collection)
        donor_results = engine.search(small_corpus.topics[0].query, 20)
        engine.index = loaded
        clone_results = engine.search(small_corpus.topics[0].query, 20)
        assert donor_results.doc_ids == clone_results.doc_ids
        assert donor_results.scores == clone_results.scores


class TestServingObjects:
    def test_framework_and_service_roundtrip(self, framework_factory, topic_queries):
        """A warmed service must travel whole: engine, miner, caches and
        stats all round-trip, and the clone serves identical rankings —
        the property ProcessBackend workers rely on under spawn."""
        from repro.serving.service import DiversificationService

        service = DiversificationService(framework_factory(), name="donor")
        service.warm(topic_queries)
        want = [r.ranking for r in service.diversify_batch(topic_queries)]
        clone = roundtrip(service)
        assert clone.name == "donor"
        assert clone.framework.cache_info() == service.framework.cache_info()
        got = [r.ranking for r in clone.diversify_batch(topic_queries)]
        assert got == want

    def test_diversified_result_roundtrip(self, framework_factory, ambiguous_topic):
        service_framework = framework_factory()
        result = service_framework.diversify_query(ambiguous_topic.query)
        loaded = roundtrip(result)
        assert loaded.query == result.query
        assert loaded.ranking == result.ranking
        assert loaded.diversified == result.diversified
        assert loaded.specializations == result.specializations

"""Tests for the objective-function reference implementations."""

from __future__ import annotations

import pytest

from repro.core.objectives import (
    brute_force_best,
    coverage_counts,
    max_utility_objective,
    ql_diversify_objective,
    satisfies_proportionality,
    xquad_step_score,
)

from .helpers import build_task, two_intent_task


class TestQLDiversifyObjective:
    def test_empty_set_zero(self):
        assert ql_diversify_objective(two_intent_task(), []) == 0.0

    def test_monotone_in_set(self):
        task = two_intent_task()
        assert ql_diversify_objective(task, ["a1"]) <= ql_diversify_objective(
            task, ["a1", "b1"]
        )

    def test_submodular_diminishing_returns(self):
        task = two_intent_task()
        # gain of adding a2 to {a1} vs to {} must not increase.
        gain_empty = ql_diversify_objective(task, ["a2"])
        gain_after = ql_diversify_objective(
            task, ["a1", "a2"]
        ) - ql_diversify_objective(task, ["a1"])
        assert gain_after <= gain_empty + 1e-12

    def test_manual_value(self):
        task = two_intent_task()
        # P(S) = 0.75·(1−(1−0.9)) + 0.25·0 for S = {a1}
        assert ql_diversify_objective(task, ["a1"]) == pytest.approx(0.675)

    def test_bounded_by_one(self):
        task = two_intent_task()
        full = ql_diversify_objective(task, task.candidates.doc_ids)
        assert full <= 1.0 + 1e-12


class TestMaxUtilityObjective:
    def test_additive(self):
        task = two_intent_task()
        assert max_utility_objective(task, ["a1", "b1"]) == pytest.approx(
            task.overall_utility("a1") + task.overall_utility("b1")
        )

    def test_empty_zero(self):
        assert max_utility_objective(two_intent_task(), []) == 0.0


class TestXquadStepScore:
    def test_first_step_mixes_relevance_and_coverage(self):
        task = two_intent_task(lambda_=0.5)
        score = xquad_step_score(task, [], "a1")
        expected = 0.5 * task.relevance_of("a1") + 0.5 * (0.75 * 0.9)
        assert score == pytest.approx(expected)

    def test_coverage_shrinks_after_selection(self):
        task = two_intent_task(lambda_=1.0)
        fresh = xquad_step_score(task, [], "a2")
        after_a1 = xquad_step_score(task, ["a1"], "a2")
        assert after_a1 < fresh


class TestConstraintHelpers:
    def test_coverage_counts(self):
        task = two_intent_task()
        counts = coverage_counts(task, ["a1", "a2", "b1", "junk1"])
        assert counts == {"q A": 2, "q B": 1}

    def test_proportionality_bounded_by_availability(self):
        # Spec with huge probability but only one useful candidate: the
        # constraint must cap its demand at what exists.
        utilities = {"q A": {"x": 0.9}, "q B": {"y": 0.9}}
        scores = [("x", 2.0), ("y", 1.0), ("z", 0.5)]
        task = build_task(utilities, {"q A": 9.0, "q B": 1.0}, scores)
        assert satisfies_proportionality(task, ["x", "y", "z"], 3)

    def test_proportionality_violation_detected(self):
        task = two_intent_task()
        # 6 slots, P(A)=0.75 → needs ≥ 4 useful-for-A docs, but the set
        # has only a1.
        assert not satisfies_proportionality(
            task, ["a1", "b1", "b2", "junk1", "junk2"], 6
        )


class TestBruteForce:
    def test_finds_known_optimum(self):
        task = two_intent_task()
        best_set, best_value = brute_force_best(task, 2, ql_diversify_objective)
        assert set(best_set) == {"a1", "b1"}
        manual = ql_diversify_objective(task, ["a1", "b1"])
        assert best_value == pytest.approx(manual)

    def test_value_monotone_in_k(self):
        task = two_intent_task()
        _s2, v2 = brute_force_best(task, 2, ql_diversify_objective)
        _s3, v3 = brute_force_best(task, 3, ql_diversify_objective)
        assert v3 >= v2

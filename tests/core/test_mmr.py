"""Tests for the MMR baseline."""

from __future__ import annotations

import pytest

from repro.core.mmr import MMR
from repro.retrieval.similarity import TermVector

from .helpers import two_intent_task


def _task_with_vectors(lambda_=0.5):
    task = two_intent_task(lambda_=lambda_)
    task.vectors = {
        "a1": TermVector({"a": 1.0}),
        "a2": TermVector({"a": 1.0}),
        "a3": TermVector({"a": 1.0, "x": 0.2}),
        "a4": TermVector({"a": 1.0, "y": 0.2}),
        "b1": TermVector({"b": 1.0}),
        "b2": TermVector({"b": 1.0}),
        "junk1": TermVector({"z": 1.0}),
        "junk2": TermVector({"w": 1.0}),
    }
    return task


class TestMMR:
    def test_requires_vectors(self):
        with pytest.raises(ValueError, match="vectors"):
            MMR().diversify(two_intent_task(), 3)

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            MMR(lambda_=1.5)

    def test_returns_k(self):
        assert len(MMR().diversify(_task_with_vectors(), 4)) == 4

    def test_first_pick_is_most_relevant(self):
        task = _task_with_vectors()
        assert MMR().diversify(task, 1) == ["a1"]

    def test_redundancy_penalised(self):
        # With strong novelty weighting, the second pick avoids the
        # near-duplicate a2 and jumps to the b cluster.
        task = _task_with_vectors()
        selected = MMR(lambda_=0.3).diversify(task, 2)
        assert selected[0] == "a1"
        assert selected[1].startswith(("b", "junk"))

    def test_pure_relevance_mode_is_baseline(self):
        task = _task_with_vectors()
        selected = MMR(lambda_=1.0).diversify(task, 5)
        assert selected == task.candidates.doc_ids[:5]

    def test_no_duplicates(self):
        selected = MMR().diversify(_task_with_vectors(), 8)
        assert len(selected) == len(set(selected))

    def test_deterministic(self):
        task = _task_with_vectors()
        assert MMR().diversify(task, 5) == MMR().diversify(task, 5)

    def test_stats_populated(self):
        algo = MMR()
        algo.diversify(_task_with_vectors(), 4)
        assert algo.last_stats.selected == 4
        assert algo.last_stats.operations > 0

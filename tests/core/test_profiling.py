"""StageTimer / NullTimer behaviour for the serving-stage profiler."""

from __future__ import annotations

import pytest

from repro.core.profiling import NULL_TIMER, NullTimer, StageTimer


class TestStageTimer:
    def test_accumulates_repeated_entries(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("densify"):
                pass
        assert timer.counts["densify"] == 3
        assert timer.seconds("densify") >= 0.0

    def test_snapshot_shape(self):
        timer = StageTimer()
        with timer.stage("score"):
            pass
        with timer.stage("select"):
            pass
        snapshot = timer.snapshot()
        assert set(snapshot) == {"score", "select"}
        for entry in snapshot.values():
            assert set(entry) == {"seconds", "entries"}
            assert entry["entries"] == 1

    def test_unknown_stage_reads_zero(self):
        assert StageTimer().seconds("never-entered") == 0.0

    def test_records_even_when_stage_raises(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("select"):
                raise RuntimeError("kernel blew up")
        assert timer.counts["select"] == 1

    def test_nested_stages_both_counted(self):
        timer = StageTimer()
        with timer.stage("outer"):
            with timer.stage("inner"):
                pass
        assert timer.counts == {"outer": 1, "inner": 1}
        assert timer.seconds("outer") >= timer.seconds("inner")

    def test_clear_resets(self):
        timer = StageTimer()
        with timer.stage("densify"):
            pass
        timer.clear()
        assert timer.snapshot() == {}
        assert timer.report() == "no stages recorded"

    def test_report_lists_every_stage(self):
        timer = StageTimer()
        with timer.stage("densify"):
            pass
        with timer.stage("select"):
            pass
        report = timer.report()
        assert "densify" in report and "select" in report
        assert "entries" in report


class TestNullTimer:
    def test_is_a_silent_no_op(self):
        timer = NullTimer()
        with timer.stage("anything"):
            pass
        assert timer.snapshot() == {}
        assert timer.seconds("anything") == 0.0
        assert timer.report() == "profiling disabled"
        timer.clear()

    def test_shared_singleton_exists(self):
        assert isinstance(NULL_TIMER, NullTimer)

"""Identity tests for the cross-query fused batch kernels.

The fused path (``BatchArrays`` stacking + one-matmul scoring + batched
greedy selection) carries the same contract as every kernel in
``repro.core.kernels``: for each query in a stacked group, the fused
ranking must equal the per-query kernel's ranking *exactly*, including
tie breaks.  The sweep here extends ``test_fast``'s randomized identity
suite to ragged groups — mixed sizes, duplicate queries, empty
specialization sets, k > n, and the exact-arithmetic tie regime.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import kernels
from repro.core.arrays import BatchArrays
from repro.core.fast import (
    FastIASelect,
    FastMMR,
    FastOptSelect,
    FastXQuAD,
    diversify_fused,
    fused_capable,
    fused_shape,
)
from repro.core.heaps import BoundedMaxHeap
from repro.core.iaselect import IASelect
from repro.core.mmr import MMR
from repro.core.optselect import OptSelect
from repro.core.profiling import StageTimer
from repro.core.xquad import XQuAD
from repro.experiments.workloads import synthetic_task
from repro.retrieval.similarity import TermVector

from .helpers import build_task, random_task

#: Each base seed draws one ragged group of independently-random tasks.
GROUP_SEEDS = range(40)

#: Tasks stacked per group — enough for real padding without slowing CI.
GROUP_SIZE = 4

PAIRS = [
    (FastOptSelect, OptSelect),
    (FastXQuAD, XQuAD),
    (FastIASelect, IASelect),
    (FastMMR, MMR),
]

FAST_CLASSES = [fast for fast, _ in PAIRS]


def _exactness_safe(task, k: int) -> bool:
    """Whether *task* keeps the exact-arithmetic tie guarantee under *k*.

    ``random_task``'s binary regime guarantees bitwise-reproducible ties
    only while every u·p term stays exactly representable.  Truncating
    the specialization set (when ``min(k, n)`` < |S_q|) renormalizes the
    uniform powers-of-two probabilities to values like 1/7, after which
    mathematically tied scores are summation-order noise — a regime no
    two reduction orders can agree on (see the contract note in
    ``repro.core.kernels``).  Groups share one k, so a member drawn for a
    smaller k may cross that line; such members are redrawn.
    """
    arrays = task.arrays()
    binary = set(np.unique(arrays.utilities)) <= {0.0, 0.5}
    return not binary or arrays.m <= min(k, arrays.n)


def _group(base_seed: int, size: int = GROUP_SIZE):
    """A ragged group: *size* independent random tasks, one shared k."""
    draws = [random_task(1000 * base_seed + j) for j in range(size)]
    k = max(k for _, k in draws)
    tasks = []
    for j, (task, _) in enumerate(draws):
        bump = 0
        while not _exactness_safe(task, k):
            bump += 1
            task, _ = random_task(1000 * base_seed + j + 101 * bump)
        tasks.append(task)
    return tasks, k


def _empty_spec_task(n: int = 8):
    """A task whose specialization set is empty (unambiguous query)."""
    scores = [(f"d{i:03d}", 1.0 / (i + 1)) for i in range(n)]
    task = build_task({}, {}, scores)
    task.vectors = {
        doc_id: TermVector({"t0": 1.0, f"t{i % 3}": 0.5})
        for i, (doc_id, _) in enumerate(scores)
    }
    return task


class TestFusedRandomizedEquivalence:
    """Fused group rankings must equal the per-query kernel rankings."""

    @pytest.mark.parametrize("seed", GROUP_SEEDS)
    def test_fused_matches_per_query_kernels(self, seed):
        tasks, k = _group(seed)
        for fast_cls in FAST_CLASSES:
            diversifier = fast_cls()
            fused = diversify_fused(diversifier, tasks, k)
            looped = [fast_cls().diversify(task, k) for task in tasks]
            assert fused == looped, (
                f"{fast_cls.__name__} diverged on group seed {seed}, k={k}, "
                f"ns={[len(t.candidates) for t in tasks]}"
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_fused_matches_pure_python_references(self, seed):
        tasks, k = _group(seed + 500)
        for fast_cls, reference_cls in PAIRS:
            fused = diversify_fused(fast_cls(), tasks, k)
            reference = [reference_cls().diversify(task, k) for task in tasks]
            assert fused == reference, (
                f"fused {fast_cls.__name__} diverged from "
                f"{reference_cls.__name__} on group seed {seed + 500}"
            )

    def test_duplicate_queries_in_one_group(self):
        task, k = random_task(7)
        for fast_cls in FAST_CLASSES:
            single = fast_cls().diversify(task, k)
            fused = diversify_fused(fast_cls(), [task, task, task], k)
            assert fused == [single, single, single]

    def test_group_with_empty_specialization_sets(self):
        empty, (full, k) = _empty_spec_task(), random_task(3)
        for fast_cls in FAST_CLASSES:
            fused = diversify_fused(fast_cls(), [empty, full, empty], k)
            looped = [
                fast_cls().diversify(task, k) for task in (empty, full, empty)
            ]
            assert fused == looped

    def test_k_exceeding_every_group_member(self):
        tasks = [
            synthetic_task(6, num_specs=2, seed=s, with_vectors=True)
            for s in (1, 2, 3)
        ]
        for fast_cls in FAST_CLASSES:
            fused = diversify_fused(fast_cls(), tasks, 50)
            looped = [fast_cls().diversify(task, 50) for task in tasks]
            assert fused == looped

    def test_exact_tie_group(self):
        """Hand-built exact-arithmetic ties: broken by baseline rank only."""
        scores = [(f"d{i}", float(8 - i)) for i in range(8)]
        utilities = {
            "q s0": {"d0": 0.5, "d2": 0.5, "d4": 0.5},
            "q s1": {"d1": 0.5, "d3": 0.5, "d5": 0.5},
        }
        probabilities = {"q s0": 1.0, "q s1": 1.0}
        tied = build_task(utilities, probabilities, scores, lambda_=0.5)
        tied.vectors = {
            doc_id: TermVector({"shared": 1.0}) for doc_id, _ in scores
        }
        other, _ = random_task(11)
        for fast_cls in FAST_CLASSES:
            fused = diversify_fused(fast_cls(), [tied, other, tied], 6)
            looped = [
                fast_cls().diversify(task, 6) for task in (tied, other, tied)
            ]
            assert fused == looped


class TestFusedDispatch:
    """Capability probing, shape planning and error paths."""

    def test_fused_capable_for_kernel_backed_classes(self):
        for fast_cls in FAST_CLASSES:
            assert fused_capable(fast_cls())

    def test_pure_python_references_are_not_capable(self):
        for _, reference_cls in PAIRS:
            assert not fused_capable(reference_cls())

    def test_subclasses_fall_back_to_per_query(self):
        class TweakedXQuAD(FastXQuAD):
            pass

        assert not fused_capable(TweakedXQuAD())

    def test_diversify_fused_rejects_uncapable(self):
        task, k = random_task(0)
        with pytest.raises(ValueError, match="no fused executor"):
            diversify_fused(OptSelect(), [task], k)

    def test_empty_group_returns_empty(self):
        for fast_cls in FAST_CLASSES:
            assert diversify_fused(fast_cls(), [], 5) == []

    def test_mmr_requires_surrogate_vectors(self):
        task, k = random_task(4)
        task.vectors = {}
        with pytest.raises(ValueError, match="surrogate vectors"):
            diversify_fused(FastMMR(), [task], k)

    def test_fused_shape_per_algorithm(self):
        task = synthetic_task(20, num_specs=6, seed=5)
        assert fused_shape(FastXQuAD(), task, 4) == (20, 4)
        assert fused_shape(FastIASelect(), task, 4) == (20, 4)
        assert fused_shape(FastOptSelect(), task, 4) == (20, 6)
        assert fused_shape(FastMMR(), task, 4) == (20, 20)

    def test_stage_timer_records_executor_stages(self):
        tasks, k = _group(21, size=2)
        expected = {
            FastOptSelect: {"densify", "score", "select"},
            FastXQuAD: {"densify", "select", "map-back"},
            FastIASelect: {"densify", "select", "map-back"},
            FastMMR: {"densify", "select", "map-back"},
        }
        for fast_cls, stages in expected.items():
            timer = StageTimer()
            diversify_fused(fast_cls(), tasks, k, timer=timer)
            assert set(timer.totals) == stages
            assert all(timer.counts[name] == 1 for name in stages)

    def test_fused_path_maintains_stats(self):
        tasks, k = _group(9, size=2)
        diversifier = FastOptSelect()
        fused = diversify_fused(diversifier, tasks, k)
        assert diversifier.last_stats.selected == len(fused[-1])
        assert diversifier.last_stats.marginal_updates > 0


class TestOverallUtilitiesBatch:
    """One-matmul Eq. 9 scoring over a stacked batch."""

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_query_scoring(self, seed):
        tasks, _ = _group(seed + 100, size=3)
        arrays_list = [task.arrays() for task in tasks]
        batch = BatchArrays(arrays_list)
        lambdas = np.array([task.lambda_ for task in tasks])
        batched = kernels.overall_utilities_batch(batch, lambdas)
        assert batched.shape == (batch.batch, batch.n_pad)
        for b, (task, arrays) in enumerate(zip(tasks, arrays_list)):
            single = kernels.overall_utilities(arrays, task.lambda_)
            # The stacked matmul reduces in a different order than the
            # per-query mat-vec, so values agree to ULP precision; the
            # *selection* identity (exact, incl. ties) is asserted by the
            # diversify-level sweep above.
            assert np.allclose(batched[b, : arrays.n], single, atol=1e-12)

    def test_scalar_and_vector_lambda_agree(self):
        tasks, _ = _group(42, size=3)
        batch = BatchArrays([task.arrays() for task in tasks])
        scalar = kernels.overall_utilities_batch(batch, 0.25)
        vector = kernels.overall_utilities_batch(
            batch, np.full(batch.batch, 0.25)
        )
        assert np.array_equal(scalar, vector)

    def test_padding_is_inert(self):
        """Padded candidate rows score as if relevance and coverage were 0."""
        tasks, _ = _group(17, size=3)
        batch = BatchArrays([task.arrays() for task in tasks])
        scored = kernels.overall_utilities_batch(batch, 0.5)
        assert np.array_equal(scored[~batch.valid], np.zeros((~batch.valid).sum()))


def _heap_retained(values, capacity, offered=None):
    """What a BoundedMaxHeap keeps, as ascending indices."""
    heap: BoundedMaxHeap[int] = BoundedMaxHeap(capacity)
    indices = range(len(values)) if offered is None else offered
    for i in indices:
        heap.push(int(i), float(values[i]))
    return sorted(item for item, _ in heap.drain())


class TestBoundedRetention:
    """The argpartition partial top-k must equal the heap, ties included."""

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("capacity", [1, 5, 16])
    def test_partial_topk_matches_heap_on_ties(self, seed, capacity):
        rng = random.Random(seed)
        levels = [0.0, 0.25, 0.5, 0.75, 1.0]
        values = np.array([rng.choice(levels) for _ in range(64)])
        assert len(values) >= kernels.PARTIAL_TOPK_FACTOR * capacity
        retained = kernels.bounded_retention(values, capacity)
        assert retained.tolist() == _heap_retained(values, capacity)

    @pytest.mark.parametrize("seed", range(10))
    def test_stable_sort_path_matches_heap(self, seed):
        rng = random.Random(seed + 300)
        values = np.array([rng.choice((0.5, 1.0)) for _ in range(64)])
        capacity = 20  # 64 < 4 * 20: takes the stable-argsort branch
        assert len(values) < kernels.PARTIAL_TOPK_FACTOR * capacity
        retained = kernels.bounded_retention(values, capacity)
        assert retained.tolist() == _heap_retained(values, capacity)

    def test_offered_subset(self):
        values = np.array([0.1, 0.9, 0.9, 0.2, 0.9, 0.3, 0.9, 0.4])
        offered = np.array([0, 2, 4, 6])
        retained = kernels.bounded_retention(values, 2, offered)
        assert retained.tolist() == _heap_retained(values, 2, offered)

    def test_degenerate_capacities(self):
        values = np.array([0.3, 0.1, 0.2])
        assert kernels.bounded_retention(values, 0).tolist() == []
        assert kernels.bounded_retention(values, 3).tolist() == [0, 1, 2]
        assert kernels.bounded_retention(values, 10).tolist() == [0, 1, 2]

"""Tests for the IASelect greedy algorithm."""

from __future__ import annotations

import pytest

from repro.core.iaselect import IASelect
from repro.core.objectives import brute_force_best, ql_diversify_objective

from .helpers import build_task, two_intent_task


class TestBasicBehaviour:
    def test_returns_k_documents(self):
        assert len(IASelect().diversify(two_intent_task(), 5)) == 5

    def test_k_capped_at_n(self):
        task = two_intent_task()
        assert len(IASelect().diversify(task, 100)) == task.n

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            IASelect().diversify(two_intent_task(), -1)

    def test_no_duplicates(self):
        selected = IASelect().diversify(two_intent_task(), 8)
        assert len(selected) == len(set(selected))

    def test_deterministic(self):
        task = two_intent_task()
        assert IASelect().diversify(task, 6) == IASelect().diversify(task, 6)


class TestGreedyCoverage:
    def test_first_pick_maximises_weighted_utility(self):
        task = two_intent_task()
        # marginal(d) = Σ P(q')·U(d|q'): a1 gives 0.75·0.9 — the largest.
        assert IASelect().diversify(task, 1) == ["a1"]

    def test_switches_to_minority_after_dominant_covered(self):
        task = two_intent_task()
        selected = IASelect().diversify(task, 3)
        # after a1 (residual A weight 0.75·0.1) the best marginal is b1
        # (0.25·0.9 = 0.225 > 0.075·0.8).
        assert selected[0] == "a1"
        assert selected[1] == "b1"

    def test_relevance_ignored_junk_selected_late(self):
        task = two_intent_task()
        selected = IASelect().diversify(task, 8)
        # junk has zero utility everywhere; with coverage saturated the
        # algorithm falls back to baseline-rank tie-breaking.
        assert set(selected[-2:]) == {"junk1", "junk2"}

    def test_zero_utility_everywhere_degrades_to_baseline(self):
        task = two_intent_task().with_threshold(0.95)
        selected = IASelect().diversify(task, 5)
        assert selected == task.candidates.doc_ids[:5]


class TestApproximationGuarantee:
    def test_greedy_within_1_minus_1_over_e_of_optimum(self):
        """Nemhauser bound on the submodular objective (Eq. 4)."""
        task = two_intent_task()
        for k in (2, 3, 4):
            greedy = IASelect().diversify(task, k)
            greedy_value = ql_diversify_objective(task, greedy)
            _best_set, best_value = brute_force_best(
                task, k, ql_diversify_objective
            )
            assert greedy_value >= (1 - 1 / 2.718281828) * best_value - 1e-9

    def test_greedy_is_optimal_on_modular_instance(self):
        # With disjoint single-doc coverage per spec, greedy = optimal.
        utilities = {
            "q A": {"x": 0.9},
            "q B": {"y": 0.8},
            "q C": {"z": 0.7},
        }
        scores = [("x", 3.0), ("y", 2.0), ("z", 1.0), ("w", 0.5)]
        task = build_task(utilities, {"q A": 1, "q B": 1, "q C": 1}, scores)
        greedy = IASelect().diversify(task, 3)
        _best, best_value = brute_force_best(task, 3, ql_diversify_objective)
        assert ql_diversify_objective(task, greedy) == pytest.approx(best_value)


class TestInstrumentation:
    def test_operations_scale_with_k(self):
        task = two_intent_task()
        algo = IASelect()
        algo.diversify(task, 2)
        ops_k2 = algo.last_stats.operations
        algo.diversify(task, 6)
        ops_k6 = algo.last_stats.operations
        assert ops_k6 > ops_k2

    def test_operation_count_formula(self):
        """C_I(n, k) = Σ_{i=0..k-1} |S_q|·(n−i) marginal updates."""
        task = two_intent_task()
        algo = IASelect()
        k = 3
        algo.diversify(task, k)
        n, m = task.n, len(task.specializations)
        expected = sum(m * (n - i) for i in range(k))
        assert algo.last_stats.operations == expected

"""Tests for the bounded max-heap behind OptSelect."""

from __future__ import annotations

import random

import pytest

from repro.core.heaps import BoundedMaxHeap


class TestBoundedMaxHeap:
    def test_keeps_top_capacity_items(self):
        heap = BoundedMaxHeap(3)
        for score in [5.0, 1.0, 9.0, 3.0, 7.0]:
            heap.push(f"s{score}", score)
        drained = [score for _, score in heap.drain()]
        assert drained == [9.0, 7.0, 5.0]

    def test_push_returns_retention(self):
        heap = BoundedMaxHeap(1)
        assert heap.push("a", 1.0)
        assert heap.push("b", 2.0)  # evicts a
        assert not heap.push("c", 0.5)

    def test_pop_max_order(self):
        heap = BoundedMaxHeap(5)
        for score in [2.0, 8.0, 4.0]:
            heap.push(f"i{score}", score)
        assert heap.pop_max() == ("i8.0", 8.0)
        assert heap.pop_max() == ("i4.0", 4.0)
        assert heap.pop_max() == ("i2.0", 2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedMaxHeap(2).pop_max()

    def test_peek_does_not_remove(self):
        heap = BoundedMaxHeap(2)
        heap.push("a", 1.0)
        assert heap.peek_max() == ("a", 1.0)
        assert len(heap) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedMaxHeap(2).peek_max()

    def test_min_score_is_eviction_bar(self):
        heap = BoundedMaxHeap(2)
        heap.push("a", 1.0)
        heap.push("b", 5.0)
        assert heap.min_score == 1.0
        heap.push("c", 3.0)
        assert heap.min_score == 3.0

    def test_zero_capacity_accepts_nothing(self):
        heap = BoundedMaxHeap(0)
        assert not heap.push("a", 1.0)
        assert len(heap) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(-1)

    def test_ties_keep_earlier_insertion(self):
        heap = BoundedMaxHeap(1)
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop_max()[0] == "first"

    def test_push_counter(self):
        heap = BoundedMaxHeap(2)
        for i in range(10):
            heap.push(i, float(i))
        assert heap.pushes == 10

    def test_contains(self):
        heap = BoundedMaxHeap(2)
        heap.push("a", 1.0)
        assert "a" in heap
        assert "b" not in heap

    def test_bool_and_len(self):
        heap = BoundedMaxHeap(2)
        assert not heap
        heap.push("a", 1.0)
        assert heap and len(heap) == 1

    def test_drain_empties(self):
        heap = BoundedMaxHeap(3)
        heap.push("a", 1.0)
        list(heap.drain())
        assert len(heap) == 0

    def test_matches_sorted_reference_on_random_input(self):
        rng = random.Random(13)
        for trial in range(20):
            capacity = rng.randint(1, 8)
            items = [(f"x{i}", rng.random()) for i in range(rng.randint(0, 40))]
            heap = BoundedMaxHeap(capacity)
            for item, score in items:
                heap.push(item, score)
            got = [score for _, score in heap.drain()]
            expected = sorted((s for _, s in items), reverse=True)[:capacity]
            assert got == expected, f"trial {trial}"

    def test_interleaved_push_pop(self):
        heap = BoundedMaxHeap(4)
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        assert heap.pop_max()[0] == "a"
        heap.push("c", 2.0)
        assert heap.pop_max()[0] == "c"
        assert heap.pop_max()[0] == "b"

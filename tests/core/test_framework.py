"""Tests for the end-to-end diversification framework."""

from __future__ import annotations

import sys

import pytest

from repro.core.ambiguity import SpecializationSet
from repro.core.framework import (
    DiversificationFramework,
    FrameworkConfig,
    default_diversifier,
    fast_kernels_available,
    get_diversifier,
)
from repro.core.iaselect import IASelect
from repro.core.mmr import MMR
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD


class TestGetDiversifier:
    def test_registry(self):
        # use_fast defaults to False: the instrumented references, which
        # are what the complexity experiments measure.
        assert type(get_diversifier("optselect")) is OptSelect
        assert isinstance(get_diversifier("XQUAD"), XQuAD)
        assert isinstance(get_diversifier("IASelect"), IASelect)
        assert isinstance(get_diversifier("mmr"), MMR)

    def test_kwargs_forwarded(self):
        algo = get_diversifier("optselect", strict_paper_pseudocode=True)
        assert algo.strict_paper_pseudocode

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown diversifier"):
            get_diversifier("pagerank")

    def test_use_fast_returns_kernel_variant(self):
        pytest.importorskip("numpy")
        from repro.core.fast import FastOptSelect, FastXQuAD

        assert type(get_diversifier("optselect", use_fast=True)) is FastOptSelect
        assert type(get_diversifier("xquad", use_fast=True)) is FastXQuAD

    def test_use_fast_auto_detects(self):
        pytest.importorskip("numpy")
        from repro.core.fast import FastOptSelect

        assert type(get_diversifier("optselect", use_fast=None)) is FastOptSelect


class TestFastKernelDefaults:
    def test_default_is_fast_when_numpy_present(self):
        pytest.importorskip("numpy")
        from repro.core.fast import FastOptSelect

        assert fast_kernels_available()
        assert type(default_diversifier()) is FastOptSelect

    def test_framework_inherits_fast_default(self, small_engine, small_miner):
        pytest.importorskip("numpy")
        from repro.core.fast import FastOptSelect

        framework = DiversificationFramework(small_engine, small_miner)
        assert type(framework.diversifier) is FastOptSelect

    def test_use_fast_false_pins_reference(self, small_engine, small_miner):
        framework = DiversificationFramework(
            small_engine, small_miner, use_fast=False
        )
        assert type(framework.diversifier) is OptSelect

    def test_fallback_without_numpy(self, monkeypatch):
        """Simulate a numpy-less interpreter: blocking the fast module
        in sys.modules makes its import raise, and the default must fall
        back to the pure-Python reference."""
        monkeypatch.setitem(sys.modules, "repro.core.fast", None)
        assert not fast_kernels_available()
        assert type(default_diversifier()) is OptSelect
        assert type(get_diversifier("optselect", use_fast=None)) is OptSelect

    def test_use_fast_true_without_numpy_raises(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "repro.core.fast", None)
        with pytest.raises(ImportError):
            default_diversifier(use_fast=True)

    def test_fast_default_framework_matches_reference_rankings(
        self, small_engine, small_miner, framework_factory, standard_config,
        small_corpus
    ):
        pytest.importorskip("numpy")
        fast = DiversificationFramework(
            small_engine, small_miner, config=standard_config
        )
        reference = framework_factory()
        for topic in small_corpus.topics:
            assert (
                fast.diversify_query(topic.query).ranking
                == reference.diversify_query(topic.query).ranking
            )


class TestFrameworkConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=0),
            dict(candidates=0),
            dict(spec_results=-1),
            dict(lambda_=2.0),
            dict(threshold=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FrameworkConfig(**kwargs)


class TestPipeline:
    def test_ambiguous_query_is_diversified(
        self, small_framework, ambiguous_topic
    ):
        result = small_framework.diversify_query(ambiguous_topic.query)
        assert result.diversified
        assert result.algorithm == "OptSelect"
        assert len(result.ranking) == small_framework.config.k
        assert result.task is not None
        assert len(result.specializations) >= 2

    def test_unambiguous_query_returns_baseline(self, small_framework):
        result = small_framework.diversify_query("zzz unknown query")
        assert not result.diversified
        assert result.ranking == []

    def test_rankings_drawn_from_baseline_candidates(
        self, small_framework, ambiguous_topic
    ):
        result = small_framework.diversify_query(ambiguous_topic.query)
        assert set(result.ranking) <= set(result.baseline.doc_ids)

    def test_detection_via_detector_protocol(self, small_engine):
        class FakeDetector:
            def detect(self, query):
                return SpecializationSet(query=query, items=())

        framework = DiversificationFramework(small_engine, FakeDetector())
        result = framework.diversify_query("whatever")
        assert not result.diversified

    def test_spec_list_cache_reused(self, small_engine, small_miner, ambiguous_topic):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            config=FrameworkConfig(k=5, candidates=50, spec_results=5),
        )
        framework.diversify_query(ambiguous_topic.query)
        specializations = framework.detect(ambiguous_topic.query)
        first = {
            spec: framework._spec_results(spec)[0]
            for spec, _ in specializations
        }
        framework.diversify_query(ambiguous_topic.query)
        for spec, results in first.items():
            assert framework._spec_results(spec)[0] is results

    def test_cache_info_counts_hits_and_misses(
        self, small_engine, small_miner, ambiguous_topic
    ):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            config=FrameworkConfig(k=5, candidates=50, spec_results=5),
        )
        assert framework.cache_info().hits == 0
        framework.diversify_query(ambiguous_topic.query)
        cold = framework.cache_info()
        assert cold.misses > 0 and cold.size > 0
        framework.diversify_query(ambiguous_topic.query)
        warm = framework.cache_info()
        assert warm.misses == cold.misses
        assert warm.hits > cold.hits

    def test_spec_cache_is_bounded(self, small_engine, small_miner, ambiguous_topic):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            config=FrameworkConfig(k=5, candidates=50, spec_results=5),
            spec_cache_size=1,
        )
        framework.diversify_query(ambiguous_topic.query)
        info = framework.cache_info()
        assert info.size == 1
        assert info.evictions == info.misses - 1

    def test_prefetch_specializations_warms_cache(
        self, small_engine, small_miner, ambiguous_topic
    ):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            config=FrameworkConfig(k=5, candidates=50, spec_results=5),
        )
        specializations = framework.detect(ambiguous_topic.query)
        spec_queries = [spec for spec, _ in specializations]
        fetched = framework.prefetch_specializations(spec_queries)
        assert fetched == len(set(spec_queries))
        assert framework.prefetch_specializations(spec_queries) == 0
        framework.diversify_query(ambiguous_topic.query)
        assert framework.cache_info().hits >= len(spec_queries)

    def test_task_vectors_populated_for_mmr(
        self, small_engine, small_miner, ambiguous_topic
    ):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            MMR(),
            FrameworkConfig(k=5, candidates=50, spec_results=5),
        )
        result = framework.diversify_query(ambiguous_topic.query)
        assert result.diversified
        assert result.task.vectors

    def test_threshold_flows_into_matrix(
        self, small_engine, small_miner, ambiguous_topic
    ):
        framework = DiversificationFramework(
            small_engine,
            small_miner,
            config=FrameworkConfig(k=5, candidates=50, spec_results=5, threshold=0.4),
        )
        result = framework.diversify_query(ambiguous_topic.query)
        assert result.task.utilities.threshold == 0.4

    def test_algorithms_produce_different_rankings_sometimes(
        self, framework_factory, small_corpus
    ):
        """Across the detectable topics, at least one query must separate
        OptSelect from the baseline ranking — otherwise the pipeline is
        inert."""
        framework = framework_factory()
        differs = 0
        for topic in small_corpus.topics:
            result = framework.diversify_query(topic.query)
            if result.diversified and result.ranking != result.baseline.doc_ids[:10]:
                differs += 1
        assert differs >= 1

    def test_result_k_property(self, small_framework, ambiguous_topic):
        result = small_framework.diversify_query(ambiguous_topic.query)
        assert result.k == len(result.ranking)

"""Tests for DiversificationTask and the relevance estimators."""

from __future__ import annotations

import pytest

from repro.core.relevance import (
    estimate_relevance,
    minmax_relevance,
    reciprocal_rank_relevance,
    softmax_relevance,
    sum_relevance,
)
from repro.core.task import DiversificationTask
from repro.retrieval.engine import ResultList

from .helpers import build_task, two_intent_task


class TestRelevanceEstimators:
    @pytest.fixture()
    def results(self):
        return ResultList("q", [("a", 4.0), ("b", 2.0), ("c", 0.0)])

    def test_minmax_range(self, results):
        rel = minmax_relevance(results)
        assert rel["a"] == 1.0
        assert rel["c"] == 0.0
        assert 0.0 < rel["b"] < 1.0

    def test_minmax_constant_scores(self):
        rel = minmax_relevance(ResultList("q", [("a", 2.0), ("b", 2.0)]))
        assert rel == {"a": 1.0, "b": 1.0}

    def test_minmax_empty(self):
        assert minmax_relevance(ResultList("q", [])) == {}

    def test_sum_is_distribution(self, results):
        rel = sum_relevance(results)
        assert sum(rel.values()) == pytest.approx(1.0)
        assert rel["a"] > rel["b"] > rel["c"] == 0.0

    def test_sum_clamps_negative_scores(self):
        rel = sum_relevance(ResultList("q", [("a", 3.0), ("b", -1.0)]))
        assert rel["b"] == 0.0
        assert rel["a"] == pytest.approx(1.0)

    def test_sum_all_nonpositive_uniform(self):
        rel = sum_relevance(ResultList("q", [("a", -1.0), ("b", -2.0)]))
        assert rel["a"] == rel["b"] == pytest.approx(0.5)

    def test_softmax_is_distribution(self, results):
        rel = softmax_relevance(results)
        assert sum(rel.values()) == pytest.approx(1.0)
        assert rel["a"] > rel["b"] > rel["c"]

    def test_softmax_temperature_validation(self, results):
        with pytest.raises(ValueError):
            softmax_relevance(results, temperature=0)

    def test_reciprocal_rank(self, results):
        rel = reciprocal_rank_relevance(results)
        assert rel == {"a": 1.0, "b": 0.5, "c": pytest.approx(1 / 3)}

    def test_dispatch(self, results):
        assert estimate_relevance(results, "minmax")["a"] == 1.0
        with pytest.raises(ValueError, match="unknown relevance estimator"):
            estimate_relevance(results, "nope")


class TestDiversificationTask:
    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            two_intent_task(lambda_=1.5)

    def test_missing_spec_in_matrix_rejected(self):
        from repro.core.ambiguity import SpecializationSet
        from repro.core.utility import UtilityMatrix

        candidates = ResultList("q", [("d", 1.0)])
        with pytest.raises(ValueError, match="lacks specializations"):
            DiversificationTask(
                query="q",
                candidates=candidates,
                specializations=SpecializationSet.from_frequencies(
                    "q", {"q x": 1.0, "q y": 1.0}
                ),
                utilities=UtilityMatrix({"q x": {}}, ["d"]),
            )

    def test_overall_utility_equation_9(self):
        """Ũ(d|q) = (1−λ)|S_q|·P(d|q) + λ·Σ P(q'|q)·Ũ(d|R_q')."""
        task = two_intent_task(lambda_=0.4)
        doc = "a1"
        lam = 0.4
        expected = (1 - lam) * 2 * task.relevance_of(doc) + lam * (
            0.75 * task.utilities.value(doc, "q A")
            + 0.25 * task.utilities.value(doc, "q B")
        )
        assert task.overall_utility(doc) == pytest.approx(expected)

    def test_overall_utility_zero_for_unknown_doc(self):
        task = two_intent_task()
        assert task.overall_utility("missing") == 0.0

    def test_with_threshold_preserves_other_fields(self):
        task = two_intent_task()
        changed = task.with_threshold(0.5)
        assert changed.lambda_ == task.lambda_
        assert changed.relevance == task.relevance
        assert changed.utilities.threshold == 0.5

    def test_with_lambda(self):
        task = two_intent_task()
        assert task.with_lambda(0.9).lambda_ == 0.9
        # original untouched
        assert task.lambda_ == 0.5

    def test_n_property(self):
        assert two_intent_task().n == 8

    def test_create_estimates_relevance(self):
        task = build_task(
            {"q A": {"d1": 0.5}},
            {"q A": 1.0},
            [("d1", 2.0), ("d2", 1.0)],
            relevance_method="minmax",
        )
        assert task.relevance_of("d1") == 1.0
        assert task.relevance_of("d2") == 0.0

"""Equivalence tests: kernel-backed variants vs reference implementations.

The identity suite is property-style: :func:`tests.core.helpers.random_task`
draws seeded random tasks sweeping sizes, λ, thresholds and the
score/probability/utility distributions (ties included), and every
``Fast*`` kernel must reproduce its pure-Python reference's selection
exactly on each of them.  A failing seed is fully reproducible — rerun
``random_task(seed)``.
"""

from __future__ import annotations

import pytest

from repro.core.fast import (
    FastIASelect,
    FastMMR,
    FastOptSelect,
    FastXQuAD,
    get_fast_diversifier,
)
from repro.core.iaselect import IASelect
from repro.core.mmr import MMR
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD
from repro.experiments.workloads import synthetic_task

from .helpers import random_task, two_intent_task

#: Seeded random sweep width.  Each seed is a different (task, k) draw;
#: together they cover every distribution shape the generator knows.
SWEEP_SEEDS = range(40)

PAIRS = [
    (FastOptSelect, OptSelect),
    (FastXQuAD, XQuAD),
    (FastIASelect, IASelect),
    (FastMMR, MMR),
]


class TestRandomizedEquivalence:
    """Kernel selections must equal the references on random tasks."""

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_all_fast_variants_match_references(self, seed):
        task, k = random_task(seed)
        for fast_cls, reference_cls in PAIRS:
            fast = fast_cls().diversify(task, k)
            reference = reference_cls().diversify(task, k)
            assert fast == reference, (
                f"{reference_cls.__name__} diverged on random_task({seed}), "
                f"k={k}, n={len(task.candidates)}, "
                f"|S_q|={len(task.specializations)}, λ={task.lambda_}"
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_fast_optselect_strict_pseudocode_mode(self, seed):
        task, k = random_task(seed + 1000)
        reference = OptSelect(strict_paper_pseudocode=True)
        fast = FastOptSelect(strict_paper_pseudocode=True)
        assert fast.diversify(task, k) == reference.diversify(task, k)

    def test_hand_built_task(self):
        """The paper's running example, kept as a readable anchor."""
        task = two_intent_task()
        for k in (2, 4, 8):
            assert FastXQuAD().diversify(task, k) == XQuAD().diversify(task, k)
            assert FastIASelect().diversify(task, k) == IASelect().diversify(
                task, k
            )

    def test_thresholded_task(self):
        task = synthetic_task(60, num_specs=4, seed=9).with_threshold(0.5)
        assert FastXQuAD().diversify(task, 10) == XQuAD().diversify(task, 10)
        assert FastIASelect().diversify(task, 10) == IASelect().diversify(
            task, 10
        )


class TestFastBehaviour:
    def test_k_capped(self):
        task = synthetic_task(10, num_specs=2, seed=1)
        assert len(FastXQuAD().diversify(task, 50)) == 10

    def test_invalid_k(self):
        task = synthetic_task(10, num_specs=2, seed=1)
        with pytest.raises(ValueError):
            FastIASelect().diversify(task, 0)

    def test_many_specializations_capped_at_k(self):
        task = synthetic_task(30, num_specs=8, seed=2)
        selected = FastXQuAD().diversify(task, 3)
        assert len(selected) == 3

    def test_stats_populated(self):
        task = synthetic_task(40, num_specs=3, seed=3)
        algo = FastXQuAD()
        algo.diversify(task, 5)
        assert algo.last_stats.selected == 5
        assert algo.last_stats.operations > 0

    def test_fast_is_actually_faster_at_scale(self):
        import time

        task = synthetic_task(3000, num_specs=8, seed=4)
        start = time.perf_counter()
        XQuAD().diversify(task, 50)
        slow = time.perf_counter() - start
        start = time.perf_counter()
        FastXQuAD().diversify(task, 50)
        fast = time.perf_counter() - start
        assert fast < slow

    def test_mmr_without_vectors_raises(self):
        task = synthetic_task(10, num_specs=2, seed=1)
        with pytest.raises(ValueError):
            FastMMR().diversify(task, 5)

    def test_dense_view_is_shared_across_algorithms(self):
        task = synthetic_task(30, num_specs=4, seed=5)
        FastXQuAD().diversify(task, 5)
        arrays = task._arrays
        assert arrays is not None
        FastIASelect().diversify(task, 5)
        FastOptSelect().diversify(task, 5)
        assert task._arrays is arrays


class TestGetFastDiversifier:
    @pytest.mark.parametrize(
        ("name", "cls"),
        [
            ("optselect", FastOptSelect),
            ("OptSelect-fast", FastOptSelect),
            ("xquad", FastXQuAD),
            ("iaselect", FastIASelect),
            ("MMR", FastMMR),
        ],
    )
    def test_registry(self, name, cls):
        assert isinstance(get_fast_diversifier(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_fast_diversifier("nope")

"""Tests for Algorithm 1 and the SpecializationSet (Definition 1)."""

from __future__ import annotations

import pytest

from repro.core.ambiguity import (
    AmbiguityDetector,
    SpecializationSet,
    ambiguous_query_detect,
)

FREQS = {
    "apple": 100,
    "apple iphone": 80,
    "apple fruit": 40,
    "apple tree": 10,
    "apple rare": 1,
}


def _recommend(query):
    if query == "apple":
        return ["apple iphone", "apple fruit", "apple tree", "apple rare"]
    return []


def _frequency(query):
    return FREQS.get(query, 0)


class TestSpecializationSet:
    def test_from_frequencies_normalises(self):
        s = SpecializationSet.from_frequencies("q", {"a": 3, "b": 1})
        assert s.probability("a") == pytest.approx(0.75)
        assert s.probability("b") == pytest.approx(0.25)

    def test_sorted_by_probability(self):
        s = SpecializationSet.from_frequencies("q", {"low": 1, "high": 9})
        assert s.queries == ("high", "low")

    def test_unknown_specialization_zero(self):
        s = SpecializationSet.from_frequencies("q", {"a": 1})
        assert s.probability("zzz") == 0.0

    def test_empty_frequencies(self):
        s = SpecializationSet.from_frequencies("q", {})
        assert not s
        assert len(s) == 0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SpecializationSet("q", (("a", 0.5), ("b", 0.2)))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SpecializationSet("q", (("a", 0.5), ("a", 0.5)))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            SpecializationSet("q", (("a", 1.5), ("b", -0.5)))

    def test_top_renormalises(self):
        s = SpecializationSet.from_frequencies("q", {"a": 6, "b": 3, "c": 1})
        top = s.top(2)
        assert top.queries == ("a", "b")
        assert sum(p for _, p in top) == pytest.approx(1.0)
        assert top.probability("a") == pytest.approx(6 / 9)

    def test_top_noop_when_small(self):
        s = SpecializationSet.from_frequencies("q", {"a": 1, "b": 1})
        assert s.top(5) is s

    def test_top_validation(self):
        s = SpecializationSet.from_frequencies("q", {"a": 1})
        with pytest.raises(ValueError):
            s.top(0)

    def test_iteration(self):
        s = SpecializationSet.from_frequencies("q", {"a": 1, "b": 1})
        assert sorted(q for q, _ in s) == ["a", "b"]

    def test_tie_break_lexicographic(self):
        s = SpecializationSet.from_frequencies("q", {"zeta": 1, "alpha": 1})
        assert s.queries == ("alpha", "zeta")


class TestAlgorithm1:
    def test_popularity_ratio_filtering(self):
        # s=2: threshold 50 → only "apple iphone" (80) survives → < 2 → ∅.
        assert not ambiguous_query_detect("apple", _recommend, _frequency, s=2.0)
        # s=4: threshold 25 → iphone + fruit survive → fires.
        result = ambiguous_query_detect("apple", _recommend, _frequency, s=4.0)
        assert set(result.queries) == {"apple iphone", "apple fruit"}

    def test_probabilities_from_surviving_frequencies(self):
        result = ambiguous_query_detect("apple", _recommend, _frequency, s=4.0)
        assert result.probability("apple iphone") == pytest.approx(80 / 120)
        assert result.probability("apple fruit") == pytest.approx(40 / 120)

    def test_generous_ratio_admits_tail(self):
        result = ambiguous_query_detect("apple", _recommend, _frequency, s=100.0)
        assert "apple rare" in result.queries

    def test_zero_frequency_candidates_never_admitted(self):
        def rec(_q):
            return ["ghost a", "ghost b"]

        assert not ambiguous_query_detect("apple", rec, lambda q: 0, s=10.0)

    def test_query_itself_excluded(self):
        def rec(_q):
            return ["apple", "apple iphone", "apple fruit"]

        result = ambiguous_query_detect("apple", rec, _frequency, s=4.0)
        assert "apple" not in result.queries

    def test_unknown_query_not_ambiguous(self):
        assert not ambiguous_query_detect("zzz", _recommend, _frequency)

    def test_s_validation(self):
        with pytest.raises(ValueError):
            ambiguous_query_detect("apple", _recommend, _frequency, s=0)


class TestAmbiguityDetector:
    def test_detect_wraps_algorithm(self):
        detector = AmbiguityDetector(_recommend, _frequency, s=4.0)
        assert detector.is_ambiguous("apple")
        assert not detector.is_ambiguous("banana")

    def test_max_specializations_cap(self):
        detector = AmbiguityDetector(
            _recommend, _frequency, s=100.0, max_specializations=2
        )
        assert len(detector.detect("apple")) == 2

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            AmbiguityDetector(_recommend, _frequency, max_specializations=1)

    def test_detect_all_deduplicates(self):
        detector = AmbiguityDetector(_recommend, _frequency, s=4.0)
        out = detector.detect_all(["apple", "apple", "banana"])
        assert set(out) == {"apple"}

"""Unit tests for the dense task representation (TaskArrays)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import TaskArrays
from repro.experiments.workloads import synthetic_task

from .helpers import two_intent_task


class TestFromTask:
    def test_shapes_and_index(self):
        task = synthetic_task(40, num_specs=5, seed=3)
        arrays = task.arrays()
        assert arrays.n == 40 and arrays.m == 5
        assert arrays.utilities.shape == (40, 5)
        assert arrays.doc_ids == task.candidates.doc_ids
        assert all(
            arrays.index_of[d] == i for i, d in enumerate(arrays.doc_ids)
        )

    def test_values_match_sparse_matrix(self):
        task = synthetic_task(30, num_specs=4, seed=8)
        arrays = task.arrays()
        for i, doc_id in enumerate(arrays.doc_ids):
            for j, spec in enumerate(arrays.spec_queries):
                assert arrays.utilities[i, j] == task.utilities.value(
                    doc_id, spec
                )

    def test_probabilities_and_relevance(self):
        task = two_intent_task()
        arrays = task.arrays()
        assert arrays.spec_queries == [spec for spec, _ in task.specializations]
        assert arrays.probabilities.tolist() == [
            p for _, p in task.specializations
        ]
        assert arrays.relevance.tolist() == [
            task.relevance.get(d, 0.0) for d in arrays.doc_ids
        ]

    def test_memoized_on_task(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        assert task.arrays() is task.arrays()

    def test_with_lambda_shares_arrays(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        arrays = task.arrays()
        assert task.with_lambda(0.9).arrays() is arrays

    def test_with_threshold_rebuilds_arrays(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        dense = task.arrays().utilities
        rethresholded = task.with_threshold(0.8).arrays().utilities
        assert (rethresholded > 0).sum() < (dense > 0).sum()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaskArrays(
                doc_ids=["d1", "d2"],
                spec_queries=["s"],
                probabilities=[1.0],
                utilities=np.zeros((3, 1)),
                relevance=np.zeros(2),
            )


class TestHead:
    def test_truncates_and_renormalises_like_top(self):
        task = synthetic_task(25, num_specs=6, seed=5)
        arrays = task.arrays()
        head = arrays.head(3)
        top = task.specializations.top(3)
        assert head.m == 3
        assert head.spec_queries == [spec for spec, _ in top]
        # Bit-identical to SpecializationSet.top's pure-Python division.
        assert head.probabilities.tolist() == [p for _, p in top]
        assert head.utilities.shape == (25, 3)

    def test_noop_when_small_enough(self):
        arrays = synthetic_task(10, num_specs=3, seed=2).arrays()
        assert arrays.head(5) is arrays


class TestSimilarityMatrix:
    def test_matches_pairwise_cosine(self):
        from repro.retrieval.similarity import cosine

        task = synthetic_task(15, num_specs=3, seed=4, with_vectors=True)
        arrays = task.arrays()
        similarity = arrays.similarity_matrix(task.vectors)
        assert similarity.shape == (15, 15)
        for i, a in enumerate(arrays.doc_ids):
            for j, b in enumerate(arrays.doc_ids):
                expected = cosine(task.vectors[a], task.vectors[b])
                assert similarity[i, j] == pytest.approx(expected, abs=1e-12)

    def test_missing_vectors_are_zero_rows(self):
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        missing = task.candidates.doc_ids[0]
        del task.vectors[missing]
        similarity = task.arrays().similarity_matrix(task.vectors)
        assert not similarity[0].any()

    def test_built_once(self):
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        arrays = task.arrays()
        assert arrays.similarity_matrix(task.vectors) is arrays.similarity_matrix(
            task.vectors
        )

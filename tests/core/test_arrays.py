"""Unit tests for the dense task representation (TaskArrays)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import BatchArrays, TaskArrays, stacked_similarity
from repro.experiments.workloads import synthetic_task
from repro.retrieval.similarity import TermVector

from .helpers import random_task, two_intent_task


class TestFromTask:
    def test_shapes_and_index(self):
        task = synthetic_task(40, num_specs=5, seed=3)
        arrays = task.arrays()
        assert arrays.n == 40 and arrays.m == 5
        assert arrays.utilities.shape == (40, 5)
        assert arrays.doc_ids == task.candidates.doc_ids
        assert all(
            arrays.index_of[d] == i for i, d in enumerate(arrays.doc_ids)
        )

    def test_values_match_sparse_matrix(self):
        task = synthetic_task(30, num_specs=4, seed=8)
        arrays = task.arrays()
        for i, doc_id in enumerate(arrays.doc_ids):
            for j, spec in enumerate(arrays.spec_queries):
                assert arrays.utilities[i, j] == task.utilities.value(
                    doc_id, spec
                )

    def test_probabilities_and_relevance(self):
        task = two_intent_task()
        arrays = task.arrays()
        assert arrays.spec_queries == [spec for spec, _ in task.specializations]
        assert arrays.probabilities.tolist() == [
            p for _, p in task.specializations
        ]
        assert arrays.relevance.tolist() == [
            task.relevance.get(d, 0.0) for d in arrays.doc_ids
        ]

    def test_memoized_on_task(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        assert task.arrays() is task.arrays()

    def test_with_lambda_shares_arrays(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        arrays = task.arrays()
        assert task.with_lambda(0.9).arrays() is arrays

    def test_with_threshold_rebuilds_arrays(self):
        task = synthetic_task(20, num_specs=3, seed=1)
        dense = task.arrays().utilities
        rethresholded = task.with_threshold(0.8).arrays().utilities
        assert (rethresholded > 0).sum() < (dense > 0).sum()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaskArrays(
                doc_ids=["d1", "d2"],
                spec_queries=["s"],
                probabilities=[1.0],
                utilities=np.zeros((3, 1)),
                relevance=np.zeros(2),
            )


class TestHead:
    def test_truncates_and_renormalises_like_top(self):
        task = synthetic_task(25, num_specs=6, seed=5)
        arrays = task.arrays()
        head = arrays.head(3)
        top = task.specializations.top(3)
        assert head.m == 3
        assert head.spec_queries == [spec for spec, _ in top]
        # Bit-identical to SpecializationSet.top's pure-Python division.
        assert head.probabilities.tolist() == [p for _, p in top]
        assert head.utilities.shape == (25, 3)

    def test_noop_when_small_enough(self):
        arrays = synthetic_task(10, num_specs=3, seed=2).arrays()
        assert arrays.head(5) is arrays


class TestSimilarityMatrix:
    def test_matches_pairwise_cosine(self):
        from repro.retrieval.similarity import cosine

        task = synthetic_task(15, num_specs=3, seed=4, with_vectors=True)
        arrays = task.arrays()
        similarity = arrays.similarity_matrix(task.vectors)
        assert similarity.shape == (15, 15)
        for i, a in enumerate(arrays.doc_ids):
            for j, b in enumerate(arrays.doc_ids):
                expected = cosine(task.vectors[a], task.vectors[b])
                assert similarity[i, j] == pytest.approx(expected, abs=1e-12)

    def test_missing_vectors_are_zero_rows(self):
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        missing = task.candidates.doc_ids[0]
        del task.vectors[missing]
        similarity = task.arrays().similarity_matrix(task.vectors)
        assert not similarity[0].any()

    def test_built_once(self):
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        arrays = task.arrays()
        assert arrays.similarity_matrix(task.vectors) is arrays.similarity_matrix(
            task.vectors
        )

    def test_memo_survives_rebuilt_mapping(self):
        """A new dict around the same TermVector objects hits the memo."""
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        arrays = task.arrays()
        first = arrays.similarity_matrix(task.vectors)
        rebuilt = dict(task.vectors)
        assert rebuilt is not task.vectors
        assert arrays.similarity_matrix(rebuilt) is first

    def test_memo_detects_swapped_vector(self):
        """Replacing one candidate's vector in-place must rebuild."""
        task = synthetic_task(8, num_specs=2, seed=6, with_vectors=True)
        arrays = task.arrays()
        first = arrays.similarity_matrix(task.vectors)
        victim = arrays.doc_ids[0]
        task.vectors[victim] = TermVector({"entirely-new-term": 1.0})
        second = arrays.similarity_matrix(task.vectors)
        assert second is not first
        assert not np.array_equal(second[0], first[0])


class TestBatchArrays:
    def test_padded_shapes_and_masks(self):
        tasks = [
            synthetic_task(10, num_specs=2, seed=1),
            synthetic_task(25, num_specs=6, seed=2),
            synthetic_task(4, num_specs=4, seed=3),
        ]
        batch = BatchArrays([task.arrays() for task in tasks])
        assert batch.batch == 3
        assert batch.n_pad == 25 and batch.m_pad == 6
        assert batch.utilities.shape == (3, 25, 6)
        assert batch.probabilities.shape == (3, 6)
        assert batch.relevance.shape == (3, 25)
        assert batch.ns.tolist() == [10, 25, 4]
        assert batch.ms.tolist() == [2, 6, 4]
        for b, task in enumerate(tasks):
            arrays = task.arrays()
            assert np.array_equal(
                batch.utilities[b, : arrays.n, : arrays.m], arrays.utilities
            )
            assert batch.valid[b, : arrays.n].all()
            assert not batch.valid[b, arrays.n :].any()
            # padding must be arithmetically inert: exact zeros everywhere
            assert not batch.utilities[b, arrays.n :, :].any()
            assert not batch.utilities[b, :, arrays.m :].any()
            assert not batch.probabilities[b, arrays.m :].any()
            assert not batch.relevance[b, arrays.n :].any()

    def test_fill_accounting(self):
        tasks = [
            synthetic_task(10, num_specs=2, seed=1),
            synthetic_task(25, num_specs=6, seed=2),
        ]
        batch = BatchArrays([task.arrays() for task in tasks])
        assert batch.filled_cells == 10 * 2 + 25 * 6
        assert batch.padded_cells == 2 * 25 * 6
        assert batch.fill_ratio == pytest.approx(170 / 300)

    def test_identical_shapes_have_no_padding(self):
        arrays = [
            synthetic_task(12, num_specs=3, seed=s).arrays() for s in (1, 2)
        ]
        batch = BatchArrays.stack(arrays)
        assert batch.fill_ratio == 1.0
        assert batch.valid.all()

    def test_zero_spec_member_pads_to_one_column(self):
        ambiguous = synthetic_task(6, num_specs=2, seed=4).arrays()
        lone = TaskArrays(
            doc_ids=["d1", "d2"],
            spec_queries=[],
            probabilities=[],
            utilities=np.zeros((2, 0)),
            relevance=np.array([1.0, 0.5]),
        )
        batch = BatchArrays([lone, ambiguous])
        assert batch.m_pad == 2
        assert batch.ms.tolist() == [0, 2]
        assert not batch.probabilities[0].any()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty batch"):
            BatchArrays([])


class TestStackedSimilarity:
    def test_matches_per_task_matrices(self):
        draws = [random_task(100 + j) for j in range(3)]
        tasks = [task for task, _ in draws]
        arrays_list = [task.arrays() for task in tasks]
        batch = BatchArrays(arrays_list)
        stacked = stacked_similarity(
            batch, [task.vectors for task in tasks]
        )
        assert stacked.shape == (3, batch.n_pad, batch.n_pad)
        for b, (task, arrays) in enumerate(zip(tasks, arrays_list)):
            single = arrays.similarity_matrix(task.vectors)
            # One shared term index reorders the cosine dot products, so
            # values agree to ULP precision, not bitwise.
            assert np.allclose(
                stacked[b, : arrays.n, : arrays.n], single, atol=1e-12
            )
            assert not stacked[b, arrays.n :, :].any()
            assert not stacked[b, :, arrays.n :].any()

    def test_misaligned_vectors_rejected(self):
        task, _ = random_task(5)
        batch = BatchArrays([task.arrays()])
        with pytest.raises(ValueError, match="align"):
            stacked_similarity(batch, [task.vectors, task.vectors])

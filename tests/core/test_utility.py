"""Tests for the utility measure (Definition 2) and the utility matrix."""

from __future__ import annotations

import pytest

from repro.core.utility import (
    UtilityMatrix,
    harmonic_number,
    normalized_utility,
    utility,
)
from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector


class TestHarmonicNumber:
    def test_known_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1.0 + 0.5 + 1.0 / 3.0)

    def test_monotone(self):
        assert harmonic_number(10) < harmonic_number(11)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)


def _vectors():
    return {
        "s1": TermVector({"a": 1.0}),
        "s2": TermVector({"b": 1.0}),
        "cand-a": TermVector({"a": 1.0}),
        "cand-ab": TermVector({"a": 1.0, "b": 1.0}),
        "cand-c": TermVector({"c": 1.0}),
    }


class TestUtilityFunction:
    """Equation (1): U(d|R_q') = Σ (1 − δ(d,d')) / rank(d')."""

    def test_identical_to_top_result(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        # cand-a is identical to rank-1 s1 (cosine 1), orthogonal to s2.
        assert utility(vectors["cand-a"], spec, vectors) == pytest.approx(1.0)

    def test_rank_discounting(self):
        vectors = _vectors()
        spec_a_first = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        spec_a_second = ResultList("q'", [("s2", 2.0), ("s1", 1.0)])
        u_first = utility(vectors["cand-a"], spec_a_first, vectors)
        u_second = utility(vectors["cand-a"], spec_a_second, vectors)
        assert u_first == pytest.approx(1.0)
        assert u_second == pytest.approx(0.5)

    def test_orthogonal_candidate_zero(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        assert utility(vectors["cand-c"], spec, vectors) == 0.0

    def test_missing_vectors_contribute_zero(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0), ("unknown", 1.0)])
        assert utility(vectors["cand-a"], spec, vectors) == pytest.approx(1.0)

    def test_empty_spec_list(self):
        assert utility(_vectors()["cand-a"], ResultList("q'", []), {}) == 0.0


class TestNormalizedUtility:
    def test_perfect_match_is_one(self):
        vectors = {
            "s1": TermVector({"a": 1.0}),
            "s2": TermVector({"a": 1.0}),
        }
        cand = TermVector({"a": 1.0})
        spec = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        assert normalized_utility(cand, spec, vectors) == pytest.approx(1.0)

    def test_range(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        value = normalized_utility(vectors["cand-ab"], spec, vectors)
        assert 0.0 < value < 1.0

    def test_threshold_zeroes_small_values(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0), ("s2", 1.0)])
        raw = normalized_utility(vectors["cand-ab"], spec, vectors)
        assert raw > 0
        assert normalized_utility(
            vectors["cand-ab"], spec, vectors, threshold=raw + 0.01
        ) == 0.0

    def test_threshold_keeps_equal_values(self):
        vectors = _vectors()
        spec = ResultList("q'", [("s1", 2.0)])
        raw = normalized_utility(vectors["cand-a"], spec, vectors)
        assert normalized_utility(
            vectors["cand-a"], spec, vectors, threshold=raw
        ) == pytest.approx(raw)

    def test_empty_spec_list_zero(self):
        assert normalized_utility(
            TermVector({"a": 1.0}), ResultList("q'", []), {}
        ) == 0.0


class TestUtilityMatrix:
    @pytest.fixture()
    def matrix(self):
        candidates = ResultList(
            "q", [("cand-a", 3.0), ("cand-ab", 2.0), ("cand-c", 1.0)]
        )
        spec_results = {
            "q a": ResultList("q a", [("s1", 2.0), ("s2", 1.0)]),
            "q b": ResultList("q b", [("s2", 2.0)]),
        }
        return UtilityMatrix.build(candidates, spec_results, _vectors())

    def test_values_computed(self, matrix):
        assert matrix.value("cand-a", "q a") == pytest.approx(1.0 / 1.5)
        assert matrix.value("cand-c", "q a") == 0.0

    def test_useful_docs(self, matrix):
        useful = matrix.useful_docs("q a")
        assert "cand-a" in useful and "cand-ab" in useful
        assert "cand-c" not in useful

    def test_is_useful(self, matrix):
        assert matrix.is_useful("cand-ab", "q b")
        assert not matrix.is_useful("cand-a", "q b")

    def test_row(self, matrix):
        row = matrix.row("cand-ab")
        assert set(row) == {"q a", "q b"}

    def test_specializations_listed(self, matrix):
        assert set(matrix.specializations) == {"q a", "q b"}

    def test_rethresholding(self, matrix):
        high = matrix.with_threshold(0.99)
        assert high.value("cand-a", "q a") == 0.0
        # original untouched
        assert matrix.value("cand-a", "q a") > 0.0

    def test_threshold_validation(self, matrix):
        with pytest.raises(ValueError):
            matrix.with_threshold(1.5)

    def test_density(self, matrix):
        assert 0.0 < matrix.density() <= 1.0
        assert matrix.with_threshold(0.999).density() < matrix.density()

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            UtilityMatrix({"s": {"d": 1.5}}, ["d"])

    def test_missing_spec_returns_zero(self, matrix):
        assert matrix.value("cand-a", "unknown spec") == 0.0

    def test_empty_spec_results_handled(self):
        candidates = ResultList("q", [("d", 1.0)])
        matrix = UtilityMatrix.build(
            candidates, {"q x": ResultList("q x", [])}, {}
        )
        assert matrix.useful_docs("q x") == {}

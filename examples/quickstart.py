"""Quickstart: diversify an ambiguous query end to end, the served way.

Builds the whole stack at toy scale — synthetic web corpus, DPH search
engine, synthetic query log, specialization miner — then serves the
paper's pipeline through :class:`~repro.serving.DiversificationService`:
``warm()`` precomputes the specialization artifacts offline (Section 4.1)
and ``diversify()`` answers from the warmed caches, printing the baseline
SERP next to the OptSelect-diversified SERP with ground-truth aspect
labels plus the service's latency/cache statistics.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import asyncio

from repro import (
    AOL_PROFILE,
    AsyncDiversificationService,
    CorpusConfig,
    DiversificationFramework,
    DiversificationService,
    FrameworkConfig,
    OptSelect,
    SearchEngine,
    ShardedDiversificationService,
    SpecializationMiner,
    generate_corpus,
    generate_query_log,
)


def main() -> None:
    print("1. generating a synthetic ambiguous-topic corpus ...")
    corpus = generate_corpus(
        CorpusConfig(num_topics=8, docs_per_aspect=12, background_docs=200)
    )
    print(f"   {len(corpus.collection)} documents, {len(corpus.topics)} topics")

    print("2. indexing with the DPH search engine ...")
    engine = SearchEngine(corpus.collection)

    print("3. synthesising an AOL-like query log ...")
    log = generate_query_log(corpus, AOL_PROFILE.scaled(0.15))
    print(f"   {len(log)} records from {log.num_users} users")

    print("4. training the specialization miner (QFG + Search Shortcuts) ...")
    miner = SpecializationMiner(log).build()

    framework = DiversificationFramework(
        engine,
        miner,
        OptSelect(),
        FrameworkConfig(k=10, candidates=150, spec_results=15, threshold=0.2),
    )
    service = DiversificationService(framework)

    print("5. warming the service (offline specialization artifacts) ...")
    report = service.warm(topic.query for topic in corpus.topics)
    print(
        f"   {report.ambiguous}/{report.queries} queries ambiguous, "
        f"{report.fetched} specialization lists precomputed "
        f"in {report.seconds:.2f}s"
    )

    # Pick the most-queried topic — it is certain to be mined.
    topic = max(corpus.topics, key=lambda t: log.frequency(t.query))
    query = topic.query
    print(f"\n6. serving the ambiguous query {query!r}")

    result = service.diversify(query)
    if not result.diversified:
        print("   Algorithm 1 did not flag the query; try a larger log scale")
        return

    print("   mined specializations P(q'|q):")
    for spec, p in result.specializations:
        truth = topic.popularity_of(spec)
        print(f"     {spec:30s} mined={p:.2f} ground-truth={truth:.2f}")

    def aspect_of(doc_id: str) -> str:
        topic_id, aspect = corpus.labels.get(doc_id, (None, None))
        if topic_id != topic.topic_id:
            return "off-topic"
        return f"aspect {aspect}"

    baseline = result.baseline.doc_ids[: len(result.ranking)]
    print(f"\n   {'rank':4s}  {'baseline (DPH)':24s}  {'OptSelect':24s}")
    for i, (b, d) in enumerate(zip(baseline, result.ranking), start=1):
        print(
            f"   {i:4d}  {b} ({aspect_of(b):9s})   {d} ({aspect_of(d):9s})"
        )

    covered_base = {aspect_of(d) for d in baseline}
    covered_div = {aspect_of(d) for d in result.ranking}
    print(
        f"\n   aspects covered: baseline={len(covered_base)}, "
        f"diversified={len(covered_div)}"
    )

    # Serve the same query again: the bounded result LRU answers it.
    service.diversify(query)
    print(f"\n   service: {service.stats.summary()}")
    print(
        f"   caches: specialization hit rate "
        f"{service.spec_cache_info().hit_rate:.0%}, "
        f"result hit rate {service.result_cache_info().hit_rate:.0%}"
    )

    # Scale out: the same traffic through a hash-routed 4-shard cluster.
    # Every shard runs an identical framework, so the cluster must serve
    # exactly the rankings the single service served.
    print("\n7. serving the workload through a 4-shard cluster ...")
    cluster = ShardedDiversificationService.from_factory(
        lambda shard: DiversificationFramework(
            engine, miner, OptSelect(), framework.config
        ),
        num_shards=4,
    )
    queries = [t.query for t in corpus.topics]
    cluster.warm(queries)
    cluster_results = {r.query: r for r in cluster.diversify_batch(queries)}
    assert cluster_results[query].ranking == result.ranking
    print(f"   routed {query!r} to shard {cluster.route(query)}; "
          f"rankings identical to the single service")
    print(f"   cluster: {cluster.cluster_stats().summary()}")
    for stats in cluster.shard_stats():
        print(f"   {stats.summary()}")

    # The offline phase is a disk artifact, not a ritual: save the
    # cluster's warm state, then bring up a *process-backed* cluster —
    # every shard in its own OS worker — that hydrates from those files
    # instead of re-deriving the specialization lists.  On a multi-core
    # host this is the fan-out the GIL cannot serialise; rankings are
    # identical either way.
    print("\n8. persisting warm state and rehydrating a process-backed "
          "cluster ...")
    import multiprocessing
    import tempfile

    if "fork" not in multiprocessing.get_all_start_methods():
        # Without fork the closure factory below cannot reach spawn'd
        # workers; a picklable factory object would be needed instead
        # (see repro.experiments.throughput.WorkloadFrameworkFactory).
        print("   (skipped: no fork start method on this platform)")
    else:
        with tempfile.TemporaryDirectory(prefix="repro-warm-") as warm_dir:
            saved = cluster.save_warm(warm_dir)
            process_cluster = ShardedDiversificationService.from_factory(
                lambda shard: DiversificationFramework(
                    engine, miner, OptSelect(), framework.config
                ),
                num_shards=4,  # same shard count ⇒ per-shard files line up
                backend="process",
                warm_artifacts_dir=warm_dir,
            )
            try:
                report = process_cluster.warm(queries)
                assert report.fetched == 0  # everything came from disk
                process_results = process_cluster.diversify_batch(queries)
                assert [r.ranking for r in process_results] == [
                    cluster_results[q].ranking for q in queries
                ]
                print(f"   saved {saved} specialization artifacts; "
                      f"4 worker processes hydrated them (0 fetched on "
                      f"warm) and served identical rankings")
                print(f"   process cluster: "
                      f"{process_cluster.cluster_stats().summary()}")
            finally:
                process_cluster.close()

    # A real front-end gets single queries, not batches: the async
    # admission layer coalesces individual submit() calls under a
    # size/time window and dispatches them to the cluster — the served
    # rankings stay identical to the direct batched call.
    print("\n9. the same traffic as single async submits, micro-batched ...")

    async def serve_async():
        async with AsyncDiversificationService(
            cluster, max_batch_size=4, max_wait_s=0.002
        ) as front:
            return await asyncio.gather(
                *(front.submit(q) for q in queries * 2)
            ), front.stats

    async_results, front_stats = asyncio.run(serve_async())
    assert [r.ranking for r in async_results[: len(queries)]] == [
        cluster_results[q].ranking for q in queries
    ]
    sizes = dict(sorted(front_stats.batch_sizes.items()))
    print(f"   {front_stats.served} submits formed batches {sizes} "
          f"(queue wait p95 {front_stats.wait_percentile_ms(0.95):.2f}ms); "
          f"rankings identical to the batched call")


if __name__ == "__main__":
    main()

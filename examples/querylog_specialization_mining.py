"""Query-log mining walkthrough: sessions → QFG → shortcuts → Algorithm 1.

Shows each stage of Section 3's pipeline on a synthetic AOL-like log:

1. time-gap sessionization,
2. the Query-Flow-Graph and its chaining probabilities,
3. logical sessions,
4. Search-Shortcuts recommendations,
5. ambiguity detection with mined P(q'|q) against the generator's
   ground truth,
6. the Appendix C recall measure.

Run::

    python examples/querylog_specialization_mining.py
"""

from __future__ import annotations

from repro import AOL_PROFILE, CorpusConfig, generate_corpus, generate_query_log
from repro.experiments.recall import measure_recall
from repro.querylog.sessions import split_by_time_gap
from repro.querylog.specializations import SpecializationMiner


def main() -> None:
    corpus = generate_corpus(
        CorpusConfig(num_topics=8, docs_per_aspect=10, background_docs=150)
    )
    log = generate_query_log(corpus, AOL_PROFILE.scaled(0.2))
    print(
        f"log: {len(log)} records, {log.num_users} users, "
        f"{log.distinct_queries} distinct queries"
    )

    # 1. raw sessionization
    raw_sessions = split_by_time_gap(log)
    satisfactory = sum(1 for s in raw_sessions if s.is_satisfactory)
    print(
        f"time-gap sessions: {len(raw_sessions)} "
        f"({satisfactory} satisfactory)"
    )

    # 2-4. the miner owns the QFG, logical sessions and the recommender
    miner = SpecializationMiner(log).build()
    graph = miner.flow_graph
    print(
        f"query-flow graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"logical sessions: {len(miner.logical_sessions)}"
    )

    topic = max(corpus.topics, key=lambda t: log.frequency(t.query))
    root = topic.query
    print(f"\nchaining probabilities out of {root!r}:")
    for successor in graph.successors(root)[:5]:
        print(
            f"  {root!r} -> {successor!r}: "
            f"chain={graph.chain_probability(root, successor):.2f} "
            f"transition={graph.transition_probability(root, successor):.2f}"
        )

    print(f"\nSearch-Shortcuts recommendations for {root!r}:")
    for suggestion, score in miner.recommender.recommend_scored(root, n=5):
        print(f"  {suggestion:28s} score={score:.2f}")

    # 5. Algorithm 1
    mined = miner.mine(root)
    print(f"\nAlgorithm 1 on {root!r}: ambiguous = {bool(mined)}")
    print(f"{'specialization':30s} {'P(q-prime|q)':>12s} {'ground truth':>12s}")
    for spec, p in mined:
        print(f"{spec:30s} {p:12.3f} {topic.popularity_of(spec):12.3f}")

    unambiguous = "zzz unknown"
    print(
        f"\nAlgorithm 1 on {unambiguous!r}: "
        f"ambiguous = {miner.is_ambiguous(unambiguous)}"
    )

    # 6. recall measure (Appendix C)
    result = measure_recall(log)
    print(
        f"\nAppendix C recall on {log.name}: {result.detected}/{result.events}"
        f" refinement events covered = {result.recall:.0%}"
        " (paper: AOL 61%, MSN 65%)"
    )


if __name__ == "__main__":
    main()

"""Re-ranking an external engine's results (the Appendix C scenario).

The paper's second evaluation takes result lists from a third-party web
search engine (Yahoo! BOSS), re-ranks them with OptSelect using
specializations mined from a query log, and measures the utility gain of
the diversified top-k over the original top-k.

This example replays that protocol with the library's external-WSE stand-
in (BM25 mixed with a static popularity prior — see DESIGN.md §3) and
prints the per-query utility ratios that aggregate into Figure 1.

Run::

    python examples/yahoo_boss_reranking.py
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1
from repro.experiments.reporting import render_series
from repro.experiments.workloads import SMALL_SCALE, build_trec_workload


def main() -> None:
    print("building workload (corpus + AOL/MSN logs) ...")
    workload = build_trec_workload(SMALL_SCALE, logs=("AOL", "MSN"))

    print("replaying the Appendix C protocol (70/30 split, |R_q|=200, k=20) ...\n")
    result = run_figure1(workload, max_queries_per_log=25)

    for log_name in ("AOL", "MSN"):
        points = result.points[log_name]
        print(f"{log_name}: {len(points)} ambiguous test queries")
        for point in points[:6]:
            print(
                f"  {point.query!r:28s} |S_q|={point.num_specializations}"
                f" original={point.original_utility:6.2f}"
                f" diversified={point.diversified_utility:6.2f}"
                f" ratio={point.ratio:5.2f}"
            )
        print(f"  ... average ratio {result.overall_average(log_name):.2f}\n")

    print(
        render_series(
            "|S_q|",
            result.series(),
            title="Figure 1 series — average utility ratio by |S_q|",
            precision=2,
        )
    )
    print(
        "\nPaper reference: improvement factors between 5 and 10 on the"
        " real AOL/MSN logs against Yahoo! BOSS (scale-dependent; see"
        " EXPERIMENTS.md for our measured band)."
    )


if __name__ == "__main__":
    main()

"""Efficiency comparison: Tables 1 and 2 at interactive scale.

Measures operation counts (Table 1's complexity shapes) and wall-clock
milliseconds (Table 2) for OptSelect, xQuAD and IASelect on the synthetic
utility workload, and prints the OptSelect speedup factors.

Run::

    python examples/efficiency_comparison.py

For the paper's full grid (|R_q| up to 100k, k up to 1000 — slow in pure
Python) use ``python -m repro.experiments.table2 --full``.
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1, summarize as summarize_table1
from repro.experiments.table2 import (
    run_table2,
    speedup_at_largest,
    summarize as summarize_table2,
)


def main() -> None:
    print("measuring operation counts (Table 1 shapes) ...\n")
    cells = run_table1(ns=(1000, 2000), ks=(10, 100, 200))
    print(summarize_table1(cells))

    print("\nmeasuring wall-clock times (Table 2, reduced grid) ...\n")
    timing = run_table2(grid=((1000, 5000), (10, 50, 100)), repeats=3)
    print(summarize_table2(timing))

    print()
    for name, factor in speedup_at_largest(timing).items():
        print(f"OptSelect vs {name}: {factor:.1f}x faster at the largest cell")
    print(
        "\nThe gap grows linearly with k — at the paper's k = 1000 it"
        " reaches the two orders of magnitude reported in Table 2."
    )

    try:
        fast = run_table2(grid=((1000, 5000), (10, 50, 100)), repeats=3, use_fast=True)
    except ImportError:
        print("\n(numpy not installed — skipping the kernel-backed variants)")
        return
    print("\nsame grid on the kernel-backed (numpy) variants ...\n")
    print(summarize_table2(fast))
    print(
        "\nSelection-identical rankings, same asymptotic shapes, ~50x"
        " smaller constants — this is what the serving layer runs."
    )


if __name__ == "__main__":
    main()

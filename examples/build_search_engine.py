"""Using the retrieval substrate standalone.

The library's Terrier-equivalent engine is useful on its own: this example
indexes a handful of hand-written documents, compares DPH and BM25
rankings, extracts query-biased snippets, and computes the paper's
snippet-cosine distance δ (Equation 2) between results.

Run::

    python examples/build_search_engine.py
"""

from __future__ import annotations

from repro import (
    BM25,
    Document,
    DocumentCollection,
    SearchEngine,
    TermVector,
    cosine,
)

DOCUMENTS = [
    Document(
        "leopard-cat",
        "The leopard is a large cat native to Africa and Asia. Leopards "
        "hunt at night and are powerful climbers. The leopard's spotted "
        "coat provides camouflage.",
        title="Leopard (animal)",
    ),
    Document(
        "leopard-tank",
        "The Leopard 2 is a main battle tank developed in Germany. The "
        "tank entered service in 1979 and remains in use by many armies.",
        title="Leopard 2 tank",
    ),
    Document(
        "leopard-osx",
        "Mac OS X Leopard is the sixth major release of the Mac operating "
        "system from Apple. Leopard introduced Time Machine and Spaces.",
        title="Mac OS X Leopard",
    ),
    Document(
        "snow-leopard",
        "The snow leopard lives in the mountain ranges of Central Asia. "
        "Snow leopards are adapted to cold, high-altitude habitats.",
        title="Snow leopard",
    ),
    Document(
        "gardening",
        "Planting a garden requires soil, water and patience. Tomatoes "
        "grow best in full sunlight with regular watering.",
        title="Gardening basics",
    ),
]


def main() -> None:
    collection = DocumentCollection(DOCUMENTS)

    dph_engine = SearchEngine(collection)
    bm25_engine = SearchEngine(collection, model=BM25())

    query = "leopard operating system"
    print(f"query: {query!r}\n")
    for engine, label in ((dph_engine, "DPH"), (bm25_engine, "BM25")):
        results = engine.search(query, k=4)
        print(f"{label} ranking:")
        for r in results:
            print(f"  {r.rank}. {r.doc_id:14s} score={r.score:.3f}")
        print()

    print("query-biased snippets (the paper's document surrogates):")
    results = dph_engine.search("leopard", k=4)
    for r in results:
        snippet = dph_engine.snippet("leopard", r.doc_id)
        print(f"  [{r.doc_id}] {snippet.text[:90]}...")

    print("\nsnippet-space distances δ = 1 − cosine (Equation 2):")
    vectors = dph_engine.snippet_vectors("leopard", results)
    doc_ids = results.doc_ids
    for i, a in enumerate(doc_ids):
        for b in doc_ids[i + 1 :]:
            d = 1.0 - cosine(vectors[a], vectors[b])
            print(f"  δ({a}, {b}) = {d:.3f}")

    print("\nindex statistics:")
    index = dph_engine.index
    print(f"  documents            : {index.num_documents}")
    print(f"  distinct terms       : {index.num_terms}")
    print(f"  avg document length  : {index.average_document_length:.1f} terms")
    print(f"  df('leopard' stem)   : {index.document_frequency('leopard')}")

    print("\nad-hoc similarity between raw texts:")
    v1 = TermVector.from_text("the leopard hunts at night")
    v2 = TermVector.from_text("leopards hunting after dark")
    print(f"  cosine = {cosine(v1, v2):.3f}")


if __name__ == "__main__":
    main()

"""TREC-style diversity evaluation: a compact Table 3.

Builds the full-pipeline workload (synthetic ClueWeb-B substitute +
AOL-like log + miner), evaluates the DPH baseline against OptSelect,
xQuAD and IASelect over a few utility thresholds with the official
metrics (α-NDCG, IA-P), and runs the paper's Wilcoxon significance check
between the two leading systems.

Run::

    python examples/trec_diversity_evaluation.py
"""

from __future__ import annotations

from repro.evaluation.runner import compare_reports
from repro.experiments.table3 import run_table3, summarize
from repro.experiments.workloads import SMALL_SCALE, build_trec_workload


def main() -> None:
    print("building the evaluation workload (corpus, engine, log, miner) ...")
    workload = build_trec_workload(SMALL_SCALE)
    print(
        f"  {workload.scale.num_topics} topics, "
        f"{len(workload.corpus.collection)} documents, "
        f"log = {len(workload.logs['AOL'])} records"
    )

    print("running the threshold sweep ...\n")
    result = run_table3(workload, thresholds=(0.0, 0.2, 0.5, 0.75))
    print(summarize(result))

    print(f"\nAlgorithm-1 detection rate: {result.detection_rate:.0%}")

    best_opt = result.best_threshold("OptSelect", cutoff=10)
    best_xquad = result.best_threshold("xQuAD", cutoff=10)
    wilcoxon = compare_reports(
        result.reports["OptSelect"][best_opt],
        result.reports["xQuAD"][best_xquad],
        metric="alpha-ndcg",
        cutoff=10,
    )
    verdict = "significant" if wilcoxon.significant() else "not significant"
    print(
        f"Wilcoxon OptSelect(c={best_opt}) vs xQuAD(c={best_xquad}) on "
        f"a-nDCG@10: p = {wilcoxon.p_value:.3f} ({verdict} at the 0.05 level)"
    )
    print(
        "\nPaper reference (Table 3): diversified runs beat the DPH baseline"
        " at small c, IASelect trails the other two, and c = 0.75 collapses"
        " everything back onto the baseline."
    )


if __name__ == "__main__":
    main()

"""Setuptools shim.

This offline environment has no ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail.  ``pip install -e . --no-use-pep517``
falls back to ``setup.py develop``, which needs this file.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

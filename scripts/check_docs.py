#!/usr/bin/env python
"""Docs gate: the README must match the code it documents.

Checks, in order:

1. ``README.md`` and ``docs/ARCHITECTURE.md`` exist;
2. the README still references the load-bearing commands (tier-1 pytest
   line, the throughput benchmark and its ``--shards`` mode);
3. every ``python -m repro.<module>`` command mentioned in the README
   names a module that actually imports;
4. the experiment CLIs answer ``--help`` (smoke-run, subprocess per
   module — catches argparse regressions and import-time crashes).

Run from the repository root (CI runs it in the ``docs`` job)::

    python scripts/check_docs.py
"""

from __future__ import annotations

import importlib
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Strings the README must keep verbatim — each is a command a user is
#: told to run; losing one silently orphans a documented workflow.
REQUIRED_SNIPPETS = [
    "python -m pytest -x -q",
    "python -m repro.experiments.throughput",
    "python -m repro.experiments.offline",
    "--shards 4",
    "--mode async",
    "--backend process",
    "--fused",
    "--partitions 4",
    "--start-method spawn",
    "--save-stats",
    "--replicas 2",
    "--kill-shard",
    "--mode http",
    "--mode coldstart",
    "--mode ingest",
    "/documents",
    "BENCH_ingest_live.json",
    "--store",
    "--memory-budget",
    "BENCH_http_e2e.json",
    "BENCH_store_coldstart.json",
    "/drain",
    "REPRO_SPAWN_LANE=1",
    "REPRO_KILL_LANE=1",
    "docs/ARCHITECTURE.md",
    "examples/quickstart.py",
]

COMMAND_PATTERN = re.compile(r"python -m (repro(?:\.\w+)+)")


def fail(message: str) -> None:
    print(f"check_docs: FAIL — {message}")
    sys.exit(1)


def main() -> None:
    readme = ROOT / "README.md"
    architecture = ROOT / "docs" / "ARCHITECTURE.md"
    for path in (readme, architecture):
        if not path.is_file():
            fail(f"{path.relative_to(ROOT)} is missing")

    text = readme.read_text(encoding="utf-8")
    for snippet in REQUIRED_SNIPPETS:
        if snippet not in text:
            fail(f"README.md no longer mentions {snippet!r}")

    sys.path.insert(0, str(SRC))
    modules = sorted(set(COMMAND_PATTERN.findall(text)))
    if not modules:
        fail("README.md documents no `python -m repro.*` commands")
    for module in modules:
        try:
            importlib.import_module(module)
        except Exception as exc:  # pragma: no cover - failure path
            fail(f"README references `python -m {module}` but it does "
                 f"not import: {exc}")

    for module in modules:
        proc = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=ROOT,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        if proc.returncode != 0:
            fail(
                f"`python -m {module} --help` exited "
                f"{proc.returncode}:\n{proc.stderr.strip()}"
            )

    print(
        f"check_docs: OK — {len(modules)} documented commands import "
        f"and answer --help: {', '.join(modules)}"
    )


if __name__ == "__main__":
    main()
